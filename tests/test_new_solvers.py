"""Tests for fused PCG, schedule stats, and parallel ILU apply."""

import numpy as np
import pytest

from repro.ordering.schedule_stats import schedule_stats
from repro.solvers.pcg import pcg
from repro.solvers.pcg_fused import pcg_fused


def test_fused_pcg_identical_iterates(problem_3d_7pt):
    p = problem_3d_7pt
    ident = lambda r: r.copy()  # noqa: E731
    x1, h1 = pcg(p.matrix, p.rhs, ident, tol=1e-10, maxiter=200)
    x2, h2 = pcg_fused(p.matrix, p.rhs, ident, tol=1e-10, maxiter=200)
    assert h1.iterations == h2.iterations
    assert np.allclose(x1, x2)
    assert np.allclose(h1.residuals, h2.residuals)


def test_fused_pcg_with_mg(problem_2d):
    from repro.multigrid.hierarchy import build_hierarchy
    from repro.multigrid.smoothers import CSRSymgsSmoother
    from repro.multigrid.vcycle import MGPreconditioner

    p = problem_2d
    top = build_hierarchy(p.grid, p.stencil,
                          lambda g, s, m: CSRSymgsSmoother(m),
                          n_levels=2, matrix=p.matrix)
    x, hist = pcg_fused(p.matrix, p.rhs, MGPreconditioner(top),
                        tol=1e-10, maxiter=100)
    assert hist.converged
    assert np.allclose(x, p.exact, atol=1e-7)


# --- Schedule stats ---------------------------------------------------------

def test_schedule_stats_basics(vbmc_3d):
    stats = schedule_stats(vbmc_3d.schedule)
    assert stats.n_colors == vbmc_3d.n_colors
    assert stats.n_groups == vbmc_3d.schedule.n_groups
    assert stats.groups_per_color.sum() == stats.n_groups
    assert 0 < stats.balance <= 1.0
    assert stats.barriers_per_sweep == stats.n_colors


def test_speedup_bound_monotone(vbmc_3d):
    stats = schedule_stats(vbmc_3d.schedule)
    bounds = [stats.speedup_bound(w) for w in (1, 2, 4, 8, 1000)]
    assert bounds[0] == pytest.approx(1.0)
    assert all(b >= a - 1e-12 for a, b in zip(bounds, bounds[1:]))
    # Unlimited workers: bound = mean groups per color.
    assert bounds[-1] == pytest.approx(
        stats.n_groups / stats.n_colors)


def test_speedup_bound_caps_at_parallelism(vbmc_3d):
    stats = schedule_stats(vbmc_3d.schedule)
    assert stats.speedup_bound(10**6) <= stats.n_groups


# --- Parallel ILU apply ------------------------------------------------------

def test_parallel_ilu_apply_bit_identical(problem_3d_27pt, rng):
    from repro.formats.dbsr import DBSRMatrix
    from repro.ilu.ilu0_dbsr import ilu0_apply_dbsr, ilu0_factorize_dbsr
    from repro.ilu.parallel_apply import ilu0_apply_dbsr_parallel
    from repro.ordering.vbmc import build_vbmc

    p = problem_3d_27pt
    vb = build_vbmc(p.grid, p.stencil, (2, 2, 2), 4)
    dbsr = DBSRMatrix.from_csr(vb.apply_matrix(p.matrix), 4)
    f = ilu0_factorize_dbsr(dbsr)
    r = rng.standard_normal(dbsr.n_rows)
    serial = ilu0_apply_dbsr(f, r)
    for workers in (1, 2, 4):
        par = ilu0_apply_dbsr_parallel(f, r, vb.schedule,
                                       n_workers=workers)
        assert np.array_equal(par, serial), workers


def test_parallel_ilu_apply_schedule_mismatch(problem_3d_27pt, rng):
    from repro.formats.dbsr import DBSRMatrix
    from repro.ilu.ilu0_dbsr import ilu0_factorize_dbsr
    from repro.ilu.parallel_apply import ilu0_apply_dbsr_parallel
    from repro.ordering.vbmc import ColorSchedule, build_vbmc

    p = problem_3d_27pt
    vb = build_vbmc(p.grid, p.stencil, (2, 2, 2), 4)
    dbsr = DBSRMatrix.from_csr(vb.apply_matrix(p.matrix), 4)
    f = ilu0_factorize_dbsr(dbsr)
    bad = ColorSchedule(bsize=8, points_per_block=2,
                        color_group_ptr=np.array([0, 1]))
    with pytest.raises(ValueError):
        ilu0_apply_dbsr_parallel(f, rng.standard_normal(dbsr.n_rows),
                                 bad)
