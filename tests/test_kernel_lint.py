"""The kernels-directory gather lint, run as part of the suite."""

import textwrap

import pytest

from repro.utils.kernel_lint import lint_kernels, lint_source

pytestmark = pytest.mark.fast


def test_repo_kernels_are_clean():
    """No instrumented kernel bypasses VectorEngine.gather with raw
    fancy indexing (op counts cannot silently drift)."""
    violations = lint_kernels()
    assert violations == [], "\n".join(str(v) for v in violations)


def test_serve_kernels_are_clean():
    """The batched serving kernels must stay gather-free too — the
    1/k value-byte amortization claim rests on contiguous loads."""
    import os

    import repro.serve

    serve_dir = os.path.dirname(repro.serve.__file__)
    violations = lint_kernels(serve_dir)
    assert violations == [], "\n".join(str(v) for v in violations)


BAD = textwrap.dedent("""
    def bad_kernel(csr, x, engine):
        for i in range(csr.n_rows):
            lo, hi = csr.indptr[i], csr.indptr[i + 1]
            cols = csr.indices[lo:hi]
            acc = (csr.data[lo:hi] * x[cols]).sum()
    """)


def test_lint_flags_raw_fancy_indexing():
    violations = lint_source(BAD, path="bad.py")
    assert len(violations) == 1
    v = violations[0]
    assert v.function == "bad_kernel"
    assert "x[cols]" in v.snippet


def test_lint_flags_inline_index_slice():
    src = textwrap.dedent("""
        def k(csr, x, engine):
            for i in range(csr.n_rows):
                y = x[csr.indices[0:4]]
        """)
    assert len(lint_source(src)) == 1


def test_waiver_comment_suppresses():
    src = BAD.replace(
        "acc = (csr.data[lo:hi] * x[cols]).sum()",
        "acc = (csr.data[lo:hi] * x[cols]).sum()  # gather-ok: test")
    assert lint_source(src) == []


def test_uninstrumented_functions_ignored():
    src = textwrap.dedent("""
        def fast_kernel(csr, x):
            cols = csr.indices[0:4]
            return x[cols]
        """)
    assert lint_source(src) == []


def test_engine_none_fast_path_pruned():
    src = textwrap.dedent("""
        def dual(csr, x, engine=None):
            cols = csr.indices[0:4]
            if engine is None:
                return x[cols]
            return engine.gather(x, cols)
        """)
    assert lint_source(src) == []


def test_scalar_and_slice_indexing_allowed():
    src = textwrap.dedent("""
        def k(m, x, engine):
            for i in range(m.brow):
                lo = int(m.blk_ptr[i])
                v = engine.load(x, lo)
                w = x[lo:lo + 4]
                z = x[i * 4]
        """)
    assert lint_source(src) == []


def test_backend_kernels_are_clean():
    """The backend tiers (including the numba loop bodies, which take
    no engine parameter) must also be gather-free — checked in strict
    every-function mode."""
    from repro.utils.kernel_lint import BACKENDS_DIR

    violations = lint_kernels(BACKENDS_DIR, require_engine=False)
    assert violations == [], "\n".join(str(v) for v in violations)


def test_require_engine_false_flags_engineless_kernels():
    src = textwrap.dedent("""
        def body(colidx, vals, x):
            cols = colidx[0:4]
            return x[cols]
        """)
    assert lint_source(src) == []
    assert len(lint_source(src, require_engine=False)) == 1
