"""gateway-chaos-bench report: gates, schema conformance, CLI wiring."""

import json

import pytest

from repro.observe.schema_check import TraceSchemaError, validate_report
from repro.supervise.bench import collect_bench_gateway_chaos

pytestmark = [pytest.mark.fast, pytest.mark.chaos]

SCHEMA = "tests/supervise/bench_gateway_chaos.schema.json"


@pytest.fixture(scope="module")
def report():
    return collect_bench_gateway_chaos(nx=5, n_requests=6)


def test_report_passes_all_gates(report):
    assert report["ok"] is True
    assert all(report["gates"].values()), report["gates"]


def test_report_matches_checked_in_schema(report):
    validate_report(report, schema_path=SCHEMA)


def test_schema_check_rejects_mutants(report):
    bad = json.loads(json.dumps(report))
    bad["schema"] = "dbsr-repro/bench-gateway-chaos/v0"
    with pytest.raises(TraceSchemaError):
        validate_report(bad, schema_path=SCHEMA)
    bad = json.loads(json.dumps(report))
    del bad["poison_restart"]
    with pytest.raises(TraceSchemaError):
        validate_report(bad, schema_path=SCHEMA)
    bad = json.loads(json.dumps(report))
    del bad["gates"]["hedge_winner_bit_identical"]
    with pytest.raises(TraceSchemaError):
        validate_report(bad, schema_path=SCHEMA)


def test_clean_phase_has_no_supervision_interventions(report):
    clean = report["clean"]
    assert clean["all_bitwise"] is True
    assert clean["quarantines"] == 0
    assert clean["retries"] == 0
    assert clean["sheds"] == 0
    assert clean["resolution"]["no_lost_columns"] is True


def test_crash_storm_recovers_every_column(report):
    storm = report["crash_storm"]
    assert storm["recovery_rate"] == 1.0
    assert storm["recovered"] == storm["n_requests"]
    assert storm["retries"] >= 1
    assert storm["faults_injected"] >= 1
    assert storm["resolution"]["failed_columns"] == 0


def test_poison_restart_stays_inside_backoff_budget(report):
    pr = report["poison_restart"]
    assert pr["quarantines"] >= 1
    assert pr["restarts"] >= 1
    assert pr["within_backoff_budget"] is True
    assert pr["budget_left"] >= 0
    assert pr["resolution"]["no_lost_columns"] is True


def test_hedge_winner_is_bit_identical(report):
    hedging = report["hedging"]
    assert hedging["hedges"] >= 1
    assert hedging["bitwise"] is True


def test_brownout_sheds_typed_and_recovers(report):
    b = report["brownout"]
    assert b["shed_typed"] is True
    assert b["shed_retry_after"] > 0
    assert b["premium_admitted_during_shed"] is True
    assert b["recovered_normal"] is True
    assert b["reached_shed"] is True
    assert b["resolution"]["no_lost_columns"] is True


def test_cli_gateway_chaos_bench_writes_valid_report(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_gateway_chaos.json"
    rc = main(["gateway-chaos-bench", "--nx", "5", "--requests", "6",
               "--out", str(out)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "crash storm:" in text
    assert "brownout:" in text
    validate_report(json.loads(out.read_text()), schema_path=SCHEMA)
