"""DecorrelatedJitterBackoff: schedule shape, determinism, budget."""

import pytest

from repro.supervise.backoff import DecorrelatedJitterBackoff

pytestmark = pytest.mark.fast


def test_first_delay_is_base_then_bounded():
    b = DecorrelatedJitterBackoff(base=0.05, cap=2.0, seed=3)
    first = b.next()
    assert first == 0.05
    for _ in range(50):
        d = b.next()
        assert 0.05 <= d <= 2.0


def test_jitter_decorrelates_two_seeds():
    a = DecorrelatedJitterBackoff(base=0.01, cap=5.0, seed=1)
    b = DecorrelatedJitterBackoff(base=0.01, cap=5.0, seed=2)
    a.next(), b.next()  # both deterministic base
    seq_a = [a.next() for _ in range(8)]
    seq_b = [b.next() for _ in range(8)]
    assert seq_a != seq_b


def test_same_seed_replays_same_schedule():
    mk = lambda: DecorrelatedJitterBackoff(base=0.02, cap=1.0,  # noqa: E731
                                           seed=11)
    one, two = mk(), mk()
    assert [one.next() for _ in range(10)] \
        == [two.next() for _ in range(10)]


def test_reset_restarts_the_streak_at_base():
    b = DecorrelatedJitterBackoff(base=0.03, cap=2.0, seed=0)
    for _ in range(5):
        b.next()
    b.reset()
    assert b.next() == 0.03


def test_max_total_is_the_closed_form_budget_bound():
    b = DecorrelatedJitterBackoff(base=0.05, cap=0.2, seed=9)
    assert b.max_total(1) == pytest.approx(0.05)
    assert b.max_total(4) == pytest.approx(0.05 + 3 * 0.2)
    total = sum(b.next() for _ in range(4))
    assert total <= b.max_total(4) + 1e-12
    assert b.total == pytest.approx(total)
    assert b.draws == 4


def test_validation():
    with pytest.raises(ValueError):
        DecorrelatedJitterBackoff(base=0.0)
    with pytest.raises(ValueError):
        DecorrelatedJitterBackoff(base=0.5, cap=0.1)
    with pytest.raises(ValueError):
        DecorrelatedJitterBackoff().max_total(0)


def test_stats_round_trip():
    b = DecorrelatedJitterBackoff(base=0.05, cap=2.0, seed=4)
    b.next()
    s = b.stats()
    assert s["draws"] == 1 and s["total_seconds"] == pytest.approx(0.05)
    assert s["seed"] == 4
