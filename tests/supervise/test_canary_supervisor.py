"""CanaryProbe known-answer checks and ShardSupervisor lifecycle.

The probes and restart campaigns run against real
:class:`~repro.gateway.pool.ElasticShardPool` shards (tiny grids),
with chaos faults armed where a scenario needs a sick shard — the
same machinery the gateway uses, no mocks on the health path.
"""

import asyncio

import numpy as np
import pytest

from repro.gateway.pool import ElasticShardPool, GatewayShard
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serve.plan import PlanConfig
from repro.serve.service import SolveService
from repro.supervise.backoff import DecorrelatedJitterBackoff
from repro.supervise.canary import CanaryProbe
from repro.supervise.supervisor import ShardSupervisor

pytestmark = [pytest.mark.fast, pytest.mark.chaos]

CONFIG = PlanConfig(bsize=4, n_workers=1)


def make_pool(**kw):
    kw.setdefault("min_shards", 1)
    kw.setdefault("max_shards", 2)
    return ElasticShardPool(lambda: SolveService(config=CONFIG), **kw)


def make_supervisor(**kw):
    kw.setdefault("canary", CanaryProbe(CONFIG, nx=4))
    kw.setdefault("backoff_factory",
                  lambda: DecorrelatedJitterBackoff(base=0.005,
                                                    cap=0.02, seed=5))
    return ShardSupervisor(**kw)


# CanaryProbe ----------------------------------------------------------
def test_probe_passes_a_healthy_shard_bit_for_bit():
    probe = CanaryProbe(CONFIG, nx=4)
    pool = make_pool()
    shard = pool._shards[0]
    healthy, reason = probe.check(shard)
    assert healthy and reason == "ok"
    assert probe.stats()["failures"] == 0
    pool.close()


def test_probe_fails_a_poisoned_shard():
    probe = CanaryProbe(CONFIG, nx=4)
    pool = make_pool()
    shard = pool._shards[0]
    shard.poison()
    healthy, reason = probe.check(shard)
    assert not healthy and "raised" in reason
    assert probe.failures == 1
    pool.close()


def test_probe_fails_a_wrong_answer_bitwise():
    probe = CanaryProbe(CONFIG, nx=4)

    class LyingShard:
        index = 99

        def execute(self, grid, stencil, op, config, columns):
            return [probe.expected + 1e-16]  # close, but not the bits

    healthy, reason = probe.check(LyingShard())
    assert not healthy and "bit-identical" in reason


def test_probe_fails_a_per_column_error():
    probe = CanaryProbe(CONFIG, nx=4)

    class ColumnErrorShard:
        index = 98

        def execute(self, grid, stencil, op, config, columns):
            return [RuntimeError("boom")]

    healthy, reason = probe.check(ColumnErrorShard())
    assert not healthy and "column failed" in reason


# ShardSupervisor ------------------------------------------------------
def test_healthy_shard_returns_to_rotation_after_failure():
    async def run():
        pool = make_pool()
        sup = make_supervisor().bind(pool)
        shard = await pool.acquire()
        # A chunk failed but the worker itself is fine: probe passes,
        # the shard goes back to the free list.
        await sup.handle_failure(shard, RuntimeError("chunk blew up"))
        assert pool.n_free == 1 and pool.n_shards == 1
        assert sup.quarantines == 0
        assert sup.releases_healthy == 1
        pool.close()

    asyncio.run(run())


def test_defunct_shard_goes_straight_to_the_reaper():
    async def run():
        pool = make_pool()
        sup = make_supervisor().bind(pool)
        shard = await pool.acquire()
        shard.defunct = True
        probes_before = sup.canary.probes
        await sup.handle_failure(shard, MemoryError("oom"))
        # No probe wasted on a condemned shard; pool replenished.
        assert sup.canary.probes == probes_before
        assert shard not in pool._shards
        assert pool.n_shards == 1  # _reap_defunct refilled min_shards
        pool.close()

    asyncio.run(run())


def test_sick_shard_is_quarantined_and_restarted():
    async def run():
        pool = make_pool()
        sup = make_supervisor().bind(pool)
        shard = await pool.acquire()
        shard.poison()  # probe will raise -> unhealthy
        await sup.handle_failure(shard, RuntimeError("suspicious"))
        assert sup.quarantines == 1
        assert shard.quarantined and shard not in pool._shards
        await sup.drain(cancel=False)  # let the campaign finish
        assert sup.restarts == 1
        assert pool.n_shards == 1 and pool.n_free == 1
        replacement = pool._shards[0]
        assert replacement is not shard
        actions = [e["action"] for e in pool.lifecycle_events]
        assert actions == ["quarantine", "restart"]
        pool.close()

    asyncio.run(run())


def test_restart_survives_spawn_failures_within_budget():
    async def run():
        plan = FaultPlan(name="spawn-chaos", seed=3, specs=(
            FaultSpec(kind="spawn_fail", max_fires=2),
        ))
        pool = make_pool()
        sup = make_supervisor(max_restarts=4, restart_budget=6)
        sup.bind(pool)
        shard = await pool.acquire()
        shard.poison()
        with inject(plan):
            await sup.handle_failure(shard, RuntimeError("sick"))
            await sup.drain(cancel=False)
        assert sup.restart_failures == 2   # both armed spawn faults
        assert sup.restarts == 1           # third attempt adopted
        assert sup.budget_left == 6 - 3
        assert pool.n_shards == 1
        # Total sleep stayed inside the campaign's closed-form bound.
        assert sup.backoff_total <= sup.backoff_bound() + 1e-9
        pool.close()

    asyncio.run(run())


def test_budget_exhaustion_abandons_the_campaign():
    async def run():
        plan = FaultPlan(name="spawn-dead", seed=4, specs=(
            FaultSpec(kind="spawn_fail", max_fires=None),  # persistent
        ))
        pool = make_pool()
        sup = make_supervisor(max_restarts=10, restart_budget=2)
        sup.bind(pool)
        shard = await pool.acquire()
        shard.poison()
        with inject(plan):
            await sup.handle_failure(shard, RuntimeError("sick"))
            await sup.drain(cancel=False)
        assert sup.budget_left == 0
        assert sup.restarts == 0 and sup.restart_failures == 2
        assert pool.n_shards == 0  # converged small, no restart storm
        pool.close()

    asyncio.run(run())


def test_sweep_quarantines_idle_sick_shards():
    async def run():
        pool = make_pool(min_shards=2, max_shards=2)
        sup = make_supervisor().bind(pool)
        pool._shards[0].poison()
        sick = await sup.sweep()
        assert sick == 1
        assert pool.n_shards == 1  # healthy one back in rotation
        await sup.drain(cancel=False)
        assert pool.n_shards == 2  # replacement adopted
        pool.close()

    asyncio.run(run())


def test_bind_builds_a_default_canary_from_the_pool_config():
    pool = make_pool()
    sup = ShardSupervisor().bind(pool)
    assert sup.canary is not None
    assert sup.canary.check(pool._shards[0])[0]
    pool.close()


def test_release_of_quarantined_shard_is_ignored_by_the_pool():
    async def run():
        pool = make_pool()
        shard = await pool.acquire()
        pool.quarantine(shard)
        await pool.release(shard)  # supervisor owns it: no-op
        assert pool.n_free == 0 and shard not in pool._shards
        pool.close()

    asyncio.run(run())


def test_shard_stats_expose_health_flags():
    shard = GatewayShard(0, SolveService(config=CONFIG))
    s = shard.stats()
    assert {"draining", "defunct", "poisoned",
            "quarantined"} <= set(s)
    shard.close()
