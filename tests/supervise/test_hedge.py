"""RetryPolicy and HedgePolicy: delays, cold-start, clamping."""

import pytest

from repro.supervise.hedge import HedgePolicy, RetryPolicy

pytestmark = pytest.mark.fast


def test_retry_delay_is_capped_exponential():
    r = RetryPolicy(max_retries=5, base_delay=0.02, multiplier=2.0,
                    cap=0.1)
    assert r.delay(1) == pytest.approx(0.02)
    assert r.delay(2) == pytest.approx(0.04)
    assert r.delay(3) == pytest.approx(0.08)
    assert r.delay(4) == pytest.approx(0.1)   # capped
    assert r.delay(10) == pytest.approx(0.1)


def test_retry_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=0.0)
    with pytest.raises(ValueError):
        RetryPolicy().delay(0)
    assert RetryPolicy(max_retries=0).max_retries == 0  # allowed


def test_hedge_is_cold_until_min_samples():
    h = HedgePolicy(min_samples=3)
    assert h.delay() is None
    h.record(0.1)
    h.record(0.1)
    assert h.delay() is None
    h.record(0.1)
    assert h.delay() is not None


def test_hedge_delay_tracks_mean_plus_spread():
    h = HedgePolicy(alpha=1.0, spread_factor=3.0, min_samples=1,
                    min_delay=0.001, max_delay=10.0)
    h.record(0.1)  # dev EWMA seeded at 0 on the first sample
    assert h.delay() == pytest.approx(0.1)
    h.record(0.2)  # alpha=1: mean=0.2, dev=|0.2-0.1|=0.1
    assert h.delay() == pytest.approx(0.2 + 3.0 * 0.1)


def test_hedge_delay_is_clamped_both_ways():
    h = HedgePolicy(alpha=1.0, min_samples=1, min_delay=0.05,
                    max_delay=0.5)
    h.record(1e-6)
    assert h.delay() == pytest.approx(0.05)
    h.record(100.0)
    assert h.delay() == pytest.approx(0.5)


def test_hedge_validation():
    with pytest.raises(ValueError):
        HedgePolicy(min_samples=0)
    with pytest.raises(ValueError):
        HedgePolicy(min_delay=0.0)
    with pytest.raises(ValueError):
        HedgePolicy(min_delay=0.5, max_delay=0.1)


def test_stats_expose_the_threshold():
    h = HedgePolicy(min_samples=1)
    h.record(0.2)
    s = h.stats()
    assert s["samples"] == 1
    assert s["mean_seconds"] == pytest.approx(0.2)
    assert s["delay_seconds"] is not None
