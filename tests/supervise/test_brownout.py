"""BrownoutController: staged transitions, hysteresis, shed policy."""

import pytest

from repro.supervise.brownout import BrownoutController

pytestmark = pytest.mark.fast


def make(**kw):
    defaults = dict(degrade_wait=1.0, shed_wait=4.0,
                    enter_patience=2, exit_patience=2)
    defaults.update(kw)
    return BrownoutController(**defaults)


def test_stages_step_one_level_with_enter_patience():
    b = make(enter_patience=2)
    assert b.observe(10.0) == "normal"   # 1st hot sample: streak only
    assert b.observe(10.0) == "degraded"
    assert b.observe(10.0) == "degraded"  # streak restarts per step
    assert b.observe(10.0) == "shed"
    assert [t["to"] for t in b.transitions] == ["degraded", "shed"]


def test_recovery_passes_back_through_degraded():
    b = make(enter_patience=1, exit_patience=2)
    b.observe(10.0)
    b.observe(10.0)
    assert b.stage == "shed"
    assert b.observe(0.0) == "shed"       # exit patience not yet met
    assert b.observe(0.0) == "degraded"
    assert b.observe(0.0) == "degraded"
    assert b.observe(0.0) == "normal"


def test_mixed_samples_reset_both_streaks():
    b = make(enter_patience=2)
    b.observe(10.0)
    b.observe(0.0)  # calm sample wipes the enter streak
    b.observe(10.0)
    assert b.stage == "normal"
    b.observe(10.0)
    assert b.stage == "degraded"


def test_intermediate_wait_targets_degraded_not_shed():
    b = make(enter_patience=1)
    b.observe(2.0)  # >= degrade_wait, < shed_wait
    assert b.stage == "degraded"
    for _ in range(5):
        b.observe(2.0)
    assert b.stage == "degraded"  # never escalates to shed


def test_effective_chunk_shrinks_when_degraded():
    b = make(enter_patience=1, chunk_shrink=2)
    assert b.effective_chunk(8) == 8
    b.observe(2.0)
    assert b.stage == "degraded"
    assert b.effective_chunk(8) == 4
    assert b.effective_chunk(1) == 1  # never below one column
    b.observe(10.0)
    assert b.stage == "shed"
    assert b.effective_chunk(8) == 4


def test_should_shed_only_in_shed_stage_and_below_weight():
    b = make(enter_patience=1, shed_below_weight=1.0)
    assert not b.should_shed(0.5)  # normal stage spares everyone
    b.observe(10.0)
    b.observe(10.0)
    assert b.stage == "shed"
    assert b.should_shed(0.5)
    assert not b.should_shed(1.0)  # at the bar is spared
    assert not b.should_shed(2.0)


def test_retry_after_floors_and_tracks_backlog():
    b = make(retry_after_floor=0.05)
    b.observe(3.0)
    assert b.retry_after() == pytest.approx(3.0)
    assert b.retry_after(0.0) == pytest.approx(0.05)
    b.shed()
    assert b.sheds == 1


def test_validation():
    with pytest.raises(ValueError):
        BrownoutController(degrade_wait=0.0)
    with pytest.raises(ValueError):
        BrownoutController(degrade_wait=2.0, shed_wait=1.0)
    with pytest.raises(ValueError):
        make(enter_patience=0)
    with pytest.raises(ValueError):
        make(chunk_shrink=0)


def test_stats_carry_transitions():
    b = make(enter_patience=1)
    b.observe(2.0)
    s = b.stats()
    assert s["stage"] == "degraded"
    assert s["observations"] == 1
    assert s["transitions"] == [
        {"from": "normal", "to": "degraded", "queue_wait": 2.0}]
