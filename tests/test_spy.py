"""Tests for the ASCII sparsity renderer."""

import numpy as np

from repro.utils.spy import spy, spy_blocks


def test_small_matrix_exact_pattern():
    dense = np.array([[1.0, 0.0], [0.0, 2.0]])
    art = spy(dense)
    lines = art.splitlines()
    assert len(lines) == 2
    assert lines[0][0] != " " and lines[0][1] == " "
    assert lines[1][1] != " " and lines[1][0] == " "


def test_large_matrix_downsampled(problem_3d_27pt):
    art = spy(problem_3d_27pt.matrix, max_size=32)
    lines = art.splitlines()
    assert len(lines) <= 32
    assert any(ch != " " for ch in art)


def test_empty_matrix_blank():
    art = spy(np.zeros((4, 4)))
    assert set(art.replace("\n", "")) == {" "}


def test_spy_blocks_shows_tiles(reordered_2d):
    _, dbsr = reordered_2d
    art = spy_blocks(dbsr)
    lines = art.splitlines()
    assert len(lines) == dbsr.brow or len(lines) <= 64
    # Diagonal tiles exist: the trace line is populated.
    assert any(ch != " " for ch in art)


def test_reordering_visibly_changes_pattern(problem_2d, vbmc_2d):
    before = spy(problem_2d.matrix)
    after = spy(vbmc_2d.apply_matrix(problem_2d.matrix))
    assert before != after
