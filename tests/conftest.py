"""Shared fixtures: small structured-grid problems and reorderings.

Session-scoped so the (python-slow) assembly and factorization work is
paid once per test run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.dbsr import DBSRMatrix
from repro.grids.problems import poisson_problem
from repro.ordering.vbmc import build_vbmc
from repro.utils.rng import make_rng


def pytest_addoption(parser):
    # Must live in this (initial) conftest: pytest only honors
    # addoption hooks from rootdir/testpaths conftests, not from
    # subdirectory ones like tests/observe/.
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="regenerate the golden traces under "
             "tests/observe/goldens/ instead of asserting against them")


@pytest.fixture(scope="session")
def rng():
    return make_rng(42)


@pytest.fixture(scope="session")
def problem_2d():
    """8x8 grid, 9-point stencil — the paper's Fig. 2 example scale."""
    return poisson_problem((8, 8), "9pt")


@pytest.fixture(scope="session")
def problem_2d_5pt():
    return poisson_problem((8, 8), "5pt")


@pytest.fixture(scope="session")
def problem_3d_7pt():
    return poisson_problem((8, 8, 8), "7pt")


@pytest.fixture(scope="session")
def problem_3d_27pt():
    return poisson_problem((8, 8, 8), "27pt")


@pytest.fixture(scope="session")
def vbmc_2d(problem_2d):
    """Vectorized BMC of the 2-D problem: 4x4 blocks, bsize 4."""
    return build_vbmc(problem_2d.grid, problem_2d.stencil, (4, 4), 4)


@pytest.fixture(scope="session")
def reordered_2d(problem_2d, vbmc_2d):
    """(permuted CSR, DBSR) pair for the 2-D problem."""
    csr = vbmc_2d.apply_matrix(problem_2d.matrix)
    return csr, DBSRMatrix.from_csr(csr, vbmc_2d.bsize)


@pytest.fixture(scope="session")
def vbmc_3d(problem_3d_27pt):
    """(2,2,2) blocks give 8 blocks per color — real lane groups."""
    return build_vbmc(problem_3d_27pt.grid, problem_3d_27pt.stencil,
                      (2, 2, 2), 4)


@pytest.fixture(scope="session")
def reordered_3d(problem_3d_27pt, vbmc_3d):
    csr = vbmc_3d.apply_matrix(problem_3d_27pt.matrix)
    return csr, DBSRMatrix.from_csr(csr, vbmc_3d.bsize)


@pytest.fixture()
def random_sparse(rng):
    """Factory for random sparse CSR matrices with guaranteed diagonal."""
    from repro.formats.coo import COOMatrix
    from repro.formats.csr import CSRMatrix

    def make(n=24, density=0.15, seed=None, dtype=np.float64):
        local = make_rng(seed) if seed is not None else rng
        mask = local.random((n, n)) < density
        np.fill_diagonal(mask, True)
        dense = np.where(mask, local.standard_normal((n, n)), 0.0)
        # Diagonal dominance keeps factorizations stable.
        dense[np.arange(n), np.arange(n)] = np.abs(dense).sum(axis=1) + 1.0
        return CSRMatrix.from_coo(COOMatrix.from_dense(dense.astype(dtype)))

    return make
