"""Property-based tests for ILU(0) on random diagonally dominant
matrices."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.csr import CSRMatrix
from repro.formats.dbsr import DBSRMatrix
from repro.ilu.ilu0_csr import (
    ilu0_apply_csr,
    ilu0_factorize_csr,
    split_lu,
)
from repro.ilu.ilu0_dbsr import (
    build_ilu0_schedule,
    ilu0_apply_dbsr,
    ilu0_factorize_dbsr,
    ilu0_refactorize_dbsr,
)


@st.composite
def dd_matrices(draw, multiple_of=1, max_n=24):
    """Random diagonally dominant sparse matrices (stable ILU)."""
    k = draw(st.integers(2, max_n // multiple_of))
    n = k * multiple_of
    seed = draw(st.integers(0, 2**32 - 1))
    density = draw(st.floats(0.05, 0.4))
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n))
    dense[rng.random((n, n)) > density] = 0.0
    np.fill_diagonal(dense, 0.0)
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    return CSRMatrix.from_dense(dense)


@given(dd_matrices())
@settings(max_examples=25, deadline=None)
def test_ilu_residual_zero_on_pattern(A):
    """The defining ILU(0) property: (L U - A) vanishes exactly on the
    sparsity pattern of A."""
    f = ilu0_factorize_csr(A)
    L, U = split_lu(f)
    R = L @ U - A.to_dense()
    pattern = A.to_dense() != 0
    assert np.allclose(R[pattern], 0.0, atol=1e-9)


@given(dd_matrices())
@settings(max_examples=25, deadline=None)
def test_ilu_apply_inverts_lu(A):
    rng = np.random.default_rng(A.nnz)
    f = ilu0_factorize_csr(A)
    L, U = split_lu(f)
    r = rng.standard_normal(A.n_rows)
    z = ilu0_apply_csr(f, r)
    assert np.allclose(L @ (U @ z), r, atol=1e-8)


@given(dd_matrices(multiple_of=4))
@settings(max_examples=20, deadline=None)
def test_block_ilu_finite_and_consistent(A):
    """Algorithm 4 on arbitrary (non-vBMC) DBSR tilings must stay
    finite and invert its own LU factors."""
    dbsr = DBSRMatrix.from_csr(A, 4)
    if np.any(dbsr.dia_ptr < 0):
        return  # degenerate tiling; factorization requires diag tiles
    f = ilu0_factorize_dbsr(dbsr)
    assert np.all(np.isfinite(f.matrix.values))
    rng = np.random.default_rng(A.nnz)
    r = rng.standard_normal(A.n_rows)
    z = ilu0_apply_dbsr(f, r)
    assert np.all(np.isfinite(z))


@given(dd_matrices(multiple_of=4))
@settings(max_examples=20, deadline=None)
def test_schedule_replay_matches_factorization_bitwise(A):
    """A structural schedule built once must replay Algorithm 4 bit
    for bit on any coefficient snapshot with the same pattern."""
    dbsr = DBSRMatrix.from_csr(A, 4)
    if np.any(dbsr.dia_ptr < 0):
        return
    schedule = build_ilu0_schedule(dbsr)
    slow = ilu0_factorize_dbsr(dbsr)
    fast = ilu0_refactorize_dbsr(dbsr, schedule)
    assert np.array_equal(slow.matrix.values, fast.matrix.values)
    assert np.array_equal(slow.dia_ptr, fast.dia_ptr)


@st.composite
def grid_snapshots(draw):
    """A small structured grid, a DBSR plan config, and a value
    perturbation seed — the serving tier's repack domain."""
    nx = draw(st.integers(3, 5))
    stencil = draw(st.sampled_from(["7pt", "27pt"]))
    bsize = draw(st.sampled_from([4, 8]))
    seed = draw(st.integers(0, 2**16))
    scale = draw(st.floats(0.01, 0.2))
    return nx, stencil, bsize, seed, scale


@given(grid_snapshots())
@settings(max_examples=10, deadline=None)
def test_repack_bitwise_equals_cold_compile(snap):
    """The serving-tier invariant: a value-only repack of a warm plan
    is indistinguishable, bit for bit, from compiling cold with the
    same snapshot."""
    from repro.grids.grid import StructuredGrid
    from repro.serve.ilu_plan import compile_ilu_plan, repack_ilu_plan
    from repro.serve.plan import PlanConfig

    nx, stencil, bsize, seed, scale = snap
    grid = StructuredGrid((nx, nx, nx))
    config = PlanConfig(strategy="dbsr", bsize=bsize)
    plan = compile_ilu_plan(grid, stencil, config)
    rng = np.random.default_rng(seed)
    v2 = plan.values_src * (
        1.0 + scale * rng.uniform(-1.0, 1.0, plan.values_src.shape))
    warm = repack_ilu_plan(plan, v2)
    cold = compile_ilu_plan(grid, stencil, config, values=v2)
    assert warm.value_digest == cold.value_digest
    assert np.array_equal(warm.factors.matrix.values,
                          cold.factors.matrix.values)
    assert np.array_equal(warm.matrix.data, cold.matrix.data)
    b = np.random.default_rng(seed + 1).standard_normal(plan.n)
    assert np.array_equal(warm.apply(b), cold.apply(b))


@given(dd_matrices())
@settings(max_examples=15, deadline=None)
def test_ilu_preconditioner_reduces_richardson_residual(A):
    from repro.solvers.stationary import preconditioned_richardson

    rng = np.random.default_rng(A.n_rows)
    b = A.matvec(rng.standard_normal(A.n_rows))
    f = ilu0_factorize_csr(A)
    _, hist = preconditioned_richardson(
        A, b, lambda r: ilu0_apply_csr(f, r), tol=1e-8, maxiter=100)
    assert hist.final_residual < hist.initial_residual or \
        hist.initial_residual == 0.0
