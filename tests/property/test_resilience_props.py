"""Property-based tests: guardrails catch any single corruption.

The resilience contract is that a corrupted plan never reaches a
kernel: for *any* single corrupted entry in the permutation or the
DBSR block-column structure, the structural validators raise before a
sweep runs, and for any single flipped value bit the integrity digests
raise.  Hypothesis drives the "any" quantifier.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grids.grid import StructuredGrid
from repro.resilience.errors import PlanValidationError
from repro.resilience.guardrails import (
    check_integrity,
    validate_dbsr,
    validate_permutation,
    validate_plan,
)
from repro.serve.plan import PlanConfig, compile_plan

pytestmark = pytest.mark.chaos

_PLAN = None


def _plan():
    global _PLAN
    if _PLAN is None:
        _PLAN = compile_plan(StructuredGrid((6, 6, 6)), "27pt",
                             PlanConfig(bsize=4))
    return _PLAN


@given(slot=st.integers(0, 2**31), value=st.integers(0, 2**31))
@settings(max_examples=50, deadline=None)
def test_any_single_permutation_corruption_is_caught(slot, value):
    plan = _plan()
    perm = plan.ordering.old_to_new.copy()
    n = len(perm)
    i = slot % n
    # Either push the entry out of range or duplicate another image;
    # both break "bijection into [0, n_padded)".
    if value % 2:
        bad = n + (value % 97)
    else:
        j = (i + 1 + value % (n - 1)) % n
        bad = perm[j]
    perm[i] = bad
    with pytest.raises(PlanValidationError):
        validate_permutation(perm, n)


@given(slot=st.integers(0, 2**31), excess=st.integers(0, 2**16))
@settings(max_examples=50, deadline=None)
def test_any_single_block_column_corruption_is_caught(slot, excess):
    plan = _plan()
    lower = plan.lower
    ind = lower.blk_ind.copy()
    orig = lower.blk_ind
    i = slot % len(ind)
    ind[i] = lower.n_cols + excess  # anchor lands past the matrix edge
    try:
        lower.blk_ind = ind
        with pytest.raises(PlanValidationError):
            validate_dbsr(lower, "lower")
    finally:
        lower.blk_ind = orig


@given(slot=st.integers(0, 2**31), bit=st.integers(0, 63))
@settings(max_examples=50, deadline=None)
def test_any_single_bitflip_in_values_is_caught_before_kernels(slot,
                                                               bit):
    """Every bit of every stored value is covered by the sealed
    digests, so no silent value corruption survives the pre-kernel
    integrity check."""
    plan = _plan()
    flat = plan.lower.values.reshape(-1)
    i = slot % len(flat)
    bits = flat[i:i + 1].view(np.uint64)
    bits ^= np.uint64(1 << bit)
    try:
        with pytest.raises(PlanValidationError):
            check_integrity(plan, artifacts=("lower",))
    finally:
        bits ^= np.uint64(1 << bit)  # restore the shared plan
    check_integrity(plan, artifacts=("lower",))


def test_clean_plan_passes_all_validators():
    validate_plan(_plan(), level="integrity")
