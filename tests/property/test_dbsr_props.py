"""Property-based tests: vBMC + DBSR invariants across random grid
shapes, block shapes, and bsizes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.dbsr import DBSRMatrix
from repro.grids.assembly import assemble_csr
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import box9_2d, star5_2d
from repro.kernels.sptrsv_csr import split_triangular, sptrsv_csr
from repro.kernels.sptrsv_dbsr import (
    check_dbsr_triangular,
    sptrsv_dbsr_lower,
)
from repro.ordering.vbmc import build_vbmc


@st.composite
def vbmc_configs(draw):
    bx = draw(st.sampled_from([1, 2, 4]))
    by = draw(st.sampled_from([1, 2, 4]))
    kx = draw(st.integers(2, 3))
    ky = draw(st.integers(2, 3))
    bsize = draw(st.sampled_from([1, 2, 4, 8]))
    stencil = draw(st.sampled_from([star5_2d(), box9_2d()]))
    return (bx * kx, by * ky), (bx, by), bsize, stencil


@given(vbmc_configs())
@settings(max_examples=25, deadline=None)
def test_vbmc_permutation_bijective(cfg):
    dims, block_dims, bsize, stencil = cfg
    g = StructuredGrid(dims)
    vb = build_vbmc(g, stencil, block_dims, bsize)
    assert len(np.unique(vb.old_to_new)) == g.n_points
    real = vb.new_to_old[vb.new_to_old >= 0]
    assert len(np.unique(real)) == g.n_points


@given(vbmc_configs())
@settings(max_examples=25, deadline=None)
def test_vbmc_matrix_equivalence(cfg):
    dims, block_dims, bsize, stencil = cfg
    g = StructuredGrid(dims)
    A = assemble_csr(g, stencil)
    vb = build_vbmc(g, stencil, block_dims, bsize)
    Ap = vb.apply_matrix(A)
    rng = np.random.default_rng(g.n_points)
    x = rng.standard_normal(g.n_points)
    assert np.allclose(vb.restrict(Ap.matvec(vb.extend(x))),
                       A.matvec(x))


@given(vbmc_configs())
@settings(max_examples=20, deadline=None)
def test_dbsr_triangular_solvable_after_vbmc(cfg):
    """The central correctness property: vBMC makes every triangular
    part Algorithm-2-solvable, for any block shape and bsize."""
    dims, block_dims, bsize, stencil = cfg
    g = StructuredGrid(dims)
    A = assemble_csr(g, stencil)
    vb = build_vbmc(g, stencil, block_dims, bsize)
    Ap = vb.apply_matrix(A)
    L, D, U = split_triangular(Ap)
    Ld = DBSRMatrix.from_csr(L, bsize)
    assert check_dbsr_triangular(Ld, lower=True)
    rng = np.random.default_rng(bsize)
    b = rng.standard_normal(Ap.n_rows)
    assert np.allclose(sptrsv_dbsr_lower(Ld, b, diag=D),
                       sptrsv_csr(L, D, b))


@given(vbmc_configs())
@settings(max_examples=20, deadline=None)
def test_dbsr_padding_lanes_are_zero_valued(cfg):
    """Every overrun lane the paper's 'overstore' rule relies on is
    genuinely zero."""
    dims, block_dims, bsize, stencil = cfg
    g = StructuredGrid(dims)
    A = assemble_csr(g, stencil)
    vb = build_vbmc(g, stencil, block_dims, bsize)
    dbsr = DBSRMatrix.from_csr(vb.apply_matrix(A), bsize)
    anchors = dbsr.anchors
    for t in range(dbsr.n_tiles):
        cols = anchors[t] + np.arange(bsize)
        out = (cols < 0) | (cols >= dbsr.n_cols)
        assert np.all(dbsr.values[t][out] == 0.0)
