"""Property-based tests (hypothesis): format round-trips and SpMV
agreement on arbitrary sparse matrices."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.formats.bcsr import BCSRMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dbsr import DBSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.sell import SELLMatrix


def sparse_dense(draw, n_rows, n_cols):
    shape = (n_rows, n_cols)
    dense = draw(hnp.arrays(
        np.float64, shape,
        elements=st.floats(-10, 10, allow_nan=False).map(
            lambda v: 0.0 if abs(v) < 6 else v),
    ))
    return dense


@st.composite
def dense_matrices(draw, max_rows=12, max_cols=12, square_multiple=None):
    if square_multiple:
        k = draw(st.integers(1, max_rows // square_multiple))
        n = k * square_multiple
        return sparse_dense(draw, n, n)
    n_rows = draw(st.integers(1, max_rows))
    n_cols = draw(st.integers(1, max_cols))
    return sparse_dense(draw, n_rows, n_cols)


@given(dense_matrices())
@settings(max_examples=40, deadline=None)
def test_coo_roundtrip(dense):
    assert np.array_equal(COOMatrix.from_dense(dense).to_dense(), dense)


@given(dense_matrices())
@settings(max_examples=40, deadline=None)
def test_csr_roundtrip(dense):
    assert np.array_equal(CSRMatrix.from_dense(dense).to_dense(), dense)


@given(dense_matrices())
@settings(max_examples=40, deadline=None)
def test_dia_roundtrip(dense):
    coo = COOMatrix.from_dense(dense)
    assert np.array_equal(DIAMatrix.from_coo(coo).to_dense(), dense)


@given(dense_matrices(square_multiple=4))
@settings(max_examples=40, deadline=None)
def test_bcsr_roundtrip(dense):
    csr = CSRMatrix.from_dense(dense)
    assert np.array_equal(BCSRMatrix.from_csr(csr, 4).to_dense(), dense)


@given(dense_matrices(square_multiple=4))
@settings(max_examples=40, deadline=None)
def test_dbsr_roundtrip(dense):
    csr = CSRMatrix.from_dense(dense)
    dbsr = DBSRMatrix.from_csr(csr, 4)
    assert np.array_equal(dbsr.to_dense(), dense)
    # Offset range invariant.
    if dbsr.n_tiles:
        assert dbsr.blk_offset.min() > -4
        assert dbsr.blk_offset.max() < 4


@given(dense_matrices(), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_sell_matvec_matches_csr(dense, seed):
    csr = CSRMatrix.from_dense(dense)
    x = np.random.default_rng(seed).standard_normal(dense.shape[1])
    sell = SELLMatrix(csr, chunk=4, sigma=1)
    assert np.allclose(sell.matvec(x), dense @ x)


@given(dense_matrices(square_multiple=4), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_dbsr_matvec_matches_dense(dense, seed):
    csr = CSRMatrix.from_dense(dense)
    dbsr = DBSRMatrix.from_csr(csr, 4)
    x = np.random.default_rng(seed).standard_normal(dense.shape[1])
    assert np.allclose(dbsr.matvec(x), dense @ x)


@given(dense_matrices(square_multiple=2))
@settings(max_examples=30, deadline=None)
def test_memory_reports_consistent(dense):
    """nnz + padding == stored slots, for every format."""
    csr = CSRMatrix.from_dense(dense)
    mats = [csr, csr.to_coo(), DBSRMatrix.from_csr(csr, 2),
            BCSRMatrix.from_csr(csr, 2), SELLMatrix(csr, chunk=2)]
    for m in mats:
        rep = m.memory_report()
        assert rep.stored_values == rep.nnz + rep.padding_values
        assert rep.total_bytes >= rep.value_bytes
