"""Property-based tests: permutation group laws."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering.permutation import Permutation


@st.composite
def permutations(draw, max_n=30):
    n = draw(st.integers(1, max_n))
    seed = draw(st.integers(0, 2**32 - 1))
    return Permutation(np.random.default_rng(seed).permutation(n))


@given(permutations())
@settings(max_examples=50, deadline=None)
def test_forward_backward_identity(p):
    v = np.arange(p.n, dtype=float)
    assert np.array_equal(p.backward(p.forward(v)), v)


@given(permutations())
@settings(max_examples=50, deadline=None)
def test_double_inverse(p):
    assert p.inverse().inverse() == p


@given(permutations())
@settings(max_examples=50, deadline=None)
def test_compose_with_inverse_is_identity(p):
    ident = p.compose(p.inverse())
    assert ident == Permutation.identity(p.n)


@given(st.integers(0, 2**31), st.integers(0, 2**31), st.integers(2, 20))
@settings(max_examples=30, deadline=None)
def test_compose_associative(s1, s2, n):
    rng1 = np.random.default_rng(s1)
    rng2 = np.random.default_rng(s2)
    a = Permutation(rng1.permutation(n))
    b = Permutation(rng2.permutation(n))
    c = Permutation(rng1.permutation(n))
    left = a.compose(b).compose(c)
    right = a.compose(b.compose(c))
    assert left == right


@given(permutations())
@settings(max_examples=30, deadline=None)
def test_matrix_conjugation_preserves_spectrum(p):
    from repro.formats.csr import CSRMatrix

    rng = np.random.default_rng(p.n)
    dense = rng.standard_normal((p.n, p.n))
    dense = dense + dense.T
    dense[np.abs(dense) < 1.0] = 0.0
    np.fill_diagonal(dense, np.arange(1.0, p.n + 1))
    A = CSRMatrix.from_dense(dense)
    Ap = A.permute(p.old_to_new)
    ev1 = np.sort(np.linalg.eigvalsh(A.to_dense()))
    ev2 = np.sort(np.linalg.eigvalsh(Ap.to_dense()))
    assert np.allclose(ev1, ev2)
