"""Property-based tests: grids, counters, schedules, decomposition."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.decomp import decompose_ranks
from repro.grids.assembly import assemble_csr
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import box9_2d, star5_2d
from repro.simd.counters import OpCounter
from repro.simd.isa import AVX512, NEON


@given(st.lists(st.integers(1, 12), min_size=1, max_size=3))
@settings(max_examples=50, deadline=None)
def test_grid_index_coord_bijection(dims):
    g = StructuredGrid(tuple(dims))
    ids = np.arange(g.n_points)
    coords = g.coords_array()
    back = np.zeros(g.n_points, dtype=np.int64)
    for axis in range(g.ndim):
        back += coords[:, axis] * g.strides[axis]
    assert np.array_equal(back, ids)


@given(st.integers(2, 8), st.integers(2, 8), st.integers(0, 1))
@settings(max_examples=30, deadline=None)
def test_assembly_symmetric_for_symmetric_stencils(nx, ny, which):
    stencil = [star5_2d(), box9_2d()][which]
    A = assemble_csr(StructuredGrid((nx, ny)), stencil)
    dense = A.to_dense()
    assert np.array_equal(dense, dense.T)


@given(st.integers(2, 8), st.integers(2, 8))
@settings(max_examples=30, deadline=None)
def test_assembly_row_sums_nonnegative(nx, ny):
    """Dirichlet truncation only *removes* negative off-diagonals, so
    row sums are >= 0 (0 on interior rows, > 0 on boundary rows)."""
    A = assemble_csr(StructuredGrid((nx, ny)), star5_2d())
    sums = A.to_dense().sum(axis=1)
    assert np.all(sums >= -1e-12)
    assert sums.max() > 0


@given(st.integers(1, 512))
@settings(max_examples=60, deadline=None)
def test_decompose_ranks_product(n):
    grid = decompose_ranks(n)
    assert int(np.prod(grid)) == n
    assert all(p >= 1 for p in grid)


@given(st.integers(1, 200), st.integers(1, 200), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_counter_scaled_linearity(a, b, bsize):
    c = OpCounter(bsize=bsize, vload=a, vfma=b, bytes_vector=8 * a)
    doubled = c.scaled(2.0)
    assert doubled.vload == 2 * a
    assert doubled.vfma == 2 * b
    assert doubled.total_bytes == 2 * c.total_bytes


@given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_counter_merge_commutative_totals(x, y, z):
    a = OpCounter(bsize=1, sload=x, sflop=y, bytes_vector=z)
    b = OpCounter(bsize=1, sload=z, sflop=x, bytes_vector=y)
    ab = OpCounter(bsize=1)
    ab.merge(a)
    ab.merge(b)
    ba = OpCounter(bsize=1)
    ba.merge(b)
    ba.merge(a)
    assert ab == ba


@given(st.integers(1, 64), st.sampled_from([4, 8]))
@settings(max_examples=40, deadline=None)
def test_cycles_monotone_in_bsize_expansion(bsize, dtype_bytes):
    """Wider logical vectors never take fewer cycles on a fixed ISA."""
    base = OpCounter(bsize=bsize, vload=100, vfma=100)
    wider = OpCounter(bsize=bsize * 2, vload=100, vfma=100)
    for isa in (AVX512, NEON):
        assert wider.cycles_on(isa, dtype_bytes) >= \
            base.cycles_on(isa, dtype_bytes) - 1e-12


@given(st.integers(2, 6), st.integers(2, 6), st.integers(1, 3),
       st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_vbmc_schedule_stats_consistent(kx, ky, bx, by):
    from repro.ordering.schedule_stats import schedule_stats
    from repro.ordering.vbmc import build_vbmc

    g = StructuredGrid((bx * kx, by * ky))
    vb = build_vbmc(g, box9_2d(), (bx, by), 2)
    stats = schedule_stats(vb.schedule)
    assert stats.n_groups * vb.points_per_block * 2 == vb.n_padded
    assert stats.min_parallelism >= 1
    assert stats.speedup_bound(1) == 1.0
