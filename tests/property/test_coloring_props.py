"""Property-based tests: coloring validity on random grids/graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grids.assembly import assemble_csr
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import box9_2d, box27_3d, star5_2d, star7_3d
from repro.ordering.coloring import (
    greedy_coloring,
    point_multicolor,
    validate_coloring,
)

STENCILS_2D = [star5_2d(), box9_2d()]
STENCILS_3D = [star7_3d(), box27_3d()]


@given(st.integers(2, 9), st.integers(2, 9), st.integers(0, 1))
@settings(max_examples=30, deadline=None)
def test_structured_coloring_valid_2d(nx, ny, which):
    g = StructuredGrid((nx, ny))
    stencil = STENCILS_2D[which]
    colors = point_multicolor(g, stencil)
    A = assemble_csr(g, stencil)
    assert validate_coloring(A.indptr, A.indices, colors)


@given(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5),
       st.integers(0, 1))
@settings(max_examples=20, deadline=None)
def test_structured_coloring_valid_3d(nx, ny, nz, which):
    g = StructuredGrid((nx, ny, nz))
    stencil = STENCILS_3D[which]
    colors = point_multicolor(g, stencil)
    A = assemble_csr(g, stencil)
    assert validate_coloring(A.indptr, A.indices, colors)


@given(st.integers(1, 40), st.floats(0.0, 0.5),
       st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_greedy_coloring_valid_random_graph(n, density, seed):
    rng = np.random.default_rng(seed)
    adj = rng.random((n, n)) < density
    adj = np.triu(adj, 1)
    adj = adj | adj.T
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(adj.sum(axis=1), out=indptr[1:])
    indices = np.concatenate(
        [np.flatnonzero(adj[i]) for i in range(n)]
    ) if adj.any() else np.zeros(0, dtype=np.int64)
    colors = greedy_coloring(indptr, indices)
    assert validate_coloring(indptr, indices, colors)
    # Greedy bound: colors <= max degree + 1.
    max_deg = int(adj.sum(axis=1).max()) if n else 0
    assert colors.max() + 1 <= max_deg + 1
