"""Unit tests for HPCG variants."""

import pytest

from repro.hpcg.variants import VARIANTS, get_variant


def test_all_expected_variants_present():
    for name in ("reference", "mkl", "arm", "cpo", "sell", "dbsr",
                 "sell-novec", "dbsr-novec", "dbsr-gather"):
        assert name in VARIANTS


def test_reference_is_serial_scalar():
    v = get_variant("reference")
    assert not v.vectorized
    assert v.process_parallel_only
    assert v.time_inefficiency == 1.0


def test_dbsr_is_vectorized_gather_free():
    v = get_variant("dbsr")
    assert v.vectorized
    assert not v.force_gather
    assert v.smoother_kind == "dbsr"


def test_dbsr_gather_flag():
    assert get_variant("dbsr-gather").force_gather


def test_only_vendor_variants_carry_inefficiency():
    for name, v in VARIANTS.items():
        if name in ("mkl", "arm"):
            assert v.time_inefficiency > 1.0
        else:
            assert v.time_inefficiency == 1.0, name


def test_cpo_and_dbsr_share_fusion():
    assert get_variant("cpo").fusion_traffic_factor == \
        get_variant("dbsr").fusion_traffic_factor


def test_unknown_variant_rejected():
    with pytest.raises(ValueError):
        get_variant("cuda")
