"""Tests for the HPCG validation phase."""

import numpy as np
import pytest

from repro.hpcg.validation import (
    check_problem,
    test_mg_symmetry as mg_symmetry,
    test_spmv_symmetry as spmv_symmetry,
    validate_variant,
)


def test_spmv_symmetry_clean(problem_3d_27pt):
    assert spmv_symmetry(problem_3d_27pt) < 1e-12


def test_check_problem_clean(problem_3d_27pt):
    assert check_problem(problem_3d_27pt) < 1e-12


@pytest.mark.parametrize("variant", ["reference", "cpo", "sell",
                                     "dbsr"])
def test_all_variants_pass_validation(variant):
    """Every optimized variant preserves the HPCG contract: SpMV and
    MG symmetry, unperturbed problem."""
    report = validate_variant(nx=8, variant=variant, n_levels=2,
                              bsize=4, n_workers=2)
    assert report.passed, report.summary()


def test_broken_smoother_detected(problem_2d):
    """An asymmetric preconditioner must fail the MG symmetry test —
    the check has teeth."""
    from repro.kernels.symgs import gs_forward_csr

    A = problem_2d.matrix
    diag = A.diagonal()

    def forward_only(r):
        x = np.zeros(problem_2d.n)
        gs_forward_csr(A, diag, x, r)  # forward sweep only: asymmetric
        return x

    err = mg_symmetry(problem_2d, forward_only)
    assert err > 1e-8


def test_validation_report_summary():
    report = validate_variant(nx=8, variant="dbsr", n_levels=2,
                              bsize=4)
    text = report.summary()
    assert "PASSED: True" in text
    assert "symmetry" in text
