"""Unit tests for HPCG model internals."""

import numpy as np
import pytest

from repro.hpcg.benchmark import (
    HPCGModel,
    _halo_seconds,
    _spmv_counts_for,
    build_hpcg_model,
)
from repro.simd.machine import INTEL_XEON


@pytest.fixture(scope="module")
def small_models():
    return {v: build_hpcg_model(nx=8, variant=v, n_levels=2, bsize=4,
                                n_workers=2)
            for v in ("reference", "sell", "dbsr")}


def test_spmv_counts_format_dispatch(problem_2d):
    from repro.multigrid.smoothers import make_smoother

    A = problem_2d.matrix
    g, s = problem_2d.grid, problem_2d.stencil
    csr_sm = make_smoother("csr", g, s, A)
    sell_sm = make_smoother("sell", g, s, A, bsize=4, n_workers=2)
    dbsr_sm = make_smoother("dbsr", g, s, A, bsize=4, n_workers=2)
    c_csr = _spmv_counts_for(csr_sm, A)
    c_sell = _spmv_counts_for(sell_sm, A)
    c_dbsr = _spmv_counts_for(dbsr_sm, A)
    assert c_csr.vgather == 0 and c_csr.sload > 0   # scalar CSR
    assert c_sell.vgather > 0                        # SELL gathers
    assert c_dbsr.vgather == 0 and c_dbsr.vload > 0  # DBSR loads


def test_halo_seconds_zero_for_single_process():
    assert _halo_seconds(INTEL_XEON, 1, 192) == 0.0


def test_halo_seconds_grows_with_processes():
    h2 = _halo_seconds(INTEL_XEON, 2, 192)
    h56 = _halo_seconds(INTEL_XEON, 56, 192)
    assert 0 < h2 < h56


def test_node_seconds_scale_monotone(small_models):
    m = small_models["dbsr"]
    t_small = m.node_seconds_per_iteration(INTEL_XEON, 4, 4, scale=1.0)
    t_big = m.node_seconds_per_iteration(INTEL_XEON, 4, 4, scale=8.0)
    assert t_big > t_small


def test_node_seconds_threads_help_parallel_variants(small_models):
    m = small_models["dbsr"]
    scale = (192 / 8) ** 3
    t1 = m.node_seconds_per_iteration(INTEL_XEON, 1, 1, scale=scale)
    t8 = m.node_seconds_per_iteration(INTEL_XEON, 1, 8, scale=scale)
    assert t8 < t1


def test_node_seconds_threads_do_not_help_reference(small_models):
    m = small_models["reference"]
    scale = (192 / 8) ** 3
    t1 = m.node_seconds_per_iteration(INTEL_XEON, 1, 1, scale=scale)
    t8 = m.node_seconds_per_iteration(INTEL_XEON, 1, 8, scale=scale)
    # Serial in-process SYMGS dominates: threading gains are marginal.
    assert t8 > 0.5 * t1


def test_model_metadata(small_models):
    for name, m in small_models.items():
        assert m.n_local == 512
        assert m.nnz_local > 0
        assert len(m.specs) >= 4, name  # spmv + vec + per-level symgs


def test_fusion_factor_applied(small_models):
    """The CPO fusion factor shrinks modeled vector traffic."""
    from dataclasses import replace

    m = small_models["dbsr"]
    slow_variant = replace(m.variant, fusion_traffic_factor=1.0)
    fast_variant = replace(m.variant, fusion_traffic_factor=0.5)
    scale = (192 / 8) ** 3
    m_slow = HPCGModel(variant=slow_variant, specs=m.specs,
                       n_local=m.n_local, nnz_local=m.nnz_local)
    m_fast = HPCGModel(variant=fast_variant, specs=m.specs,
                       n_local=m.n_local, nnz_local=m.nnz_local)
    t_slow = m_slow.node_seconds_per_iteration(INTEL_XEON, 8, 7,
                                               scale=scale)
    t_fast = m_fast.node_seconds_per_iteration(INTEL_XEON, 8, 7,
                                               scale=scale)
    assert t_fast < t_slow
