"""Tests for the HPCG-style report renderer."""

from repro.grids.problems import hpcg_problem
from repro.hpcg.benchmark import build_hpcg_model, run_hpcg
from repro.hpcg.reporting import _nnz_estimate, render_report
from repro.simd.machine import INTEL_XEON


def test_nnz_estimate_exact():
    for nx in (2, 4, 8):
        p = hpcg_problem(nx)
        assert _nnz_estimate(nx) == p.matrix.nnz


def test_report_fields():
    r = run_hpcg(nx=8, variant="dbsr", n_levels=2, max_iters=50,
                 tol=1e-9, bsize=4, n_workers=2)
    text = render_report(r, nx=8, n_levels=2)
    assert "Global Problem Dimensions: 8x8x8" in text
    assert f"Optimized CG iterations: {r.iterations}" in text
    assert "Converged: True" in text
    assert f"Run total: {r.flops}" in text


def test_report_with_projection():
    r = run_hpcg(nx=8, variant="dbsr", n_levels=2, max_iters=50,
                 tol=1e-9, bsize=4, n_workers=2)
    model = build_hpcg_model(nx=8, variant="dbsr", n_levels=2,
                             bsize=4, n_workers=2)
    text = render_report(r, nx=8, n_levels=2, machine=INTEL_XEON,
                         model=model, processes=8, threads=7)
    assert "GFLOP/s rating:" in text
    assert INTEL_XEON.name in text
    assert "8 processes x 7 threads" in text
