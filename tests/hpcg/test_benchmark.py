"""Integration tests for the HPCG driver and GFLOPS projection."""

import numpy as np
import pytest

from repro.hpcg.benchmark import (
    best_allocation,
    build_hpcg_model,
    model_hpcg_gflops,
    run_hpcg,
)
from repro.simd.machine import INTEL_XEON, KUNPENG_920


@pytest.fixture(scope="module")
def models():
    return {v: build_hpcg_model(nx=8, variant=v, n_levels=2, bsize=4,
                                n_workers=4)
            for v in ("reference", "cpo", "sell", "dbsr", "mkl", "arm",
                      "dbsr-novec", "dbsr-gather")}


def test_functional_run_converges():
    r = run_hpcg(nx=8, variant="dbsr", n_levels=2, max_iters=50,
                 tol=1e-9, bsize=4, n_workers=2)
    assert r.converged
    assert r.final_relres < 1e-9
    assert r.flops > 0


def test_all_variants_converge_identically_enough():
    """Different storage/orderings, same math: iteration counts agree
    within the reordering effect."""
    iters = {}
    for v in ("reference", "cpo", "dbsr"):
        r = run_hpcg(nx=8, variant=v, n_levels=2, max_iters=60,
                     tol=1e-9, bsize=4, n_workers=2)
        assert r.converged, v
        iters[v] = r.iterations
    assert max(iters.values()) - min(iters.values()) <= 5


def test_dbsr_beats_cpo_at_full_node(models):
    _, _, g_cpo = best_allocation(INTEL_XEON, models["cpo"])
    _, _, g_dbsr = best_allocation(INTEL_XEON, models["dbsr"])
    ratio = g_dbsr / g_cpo
    assert 1.1 < ratio < 1.45  # paper band: 1.19x - 1.24x


def test_dbsr_beats_vendors(models):
    """Paper: 1.47-1.70x over MKL, 2.41-3.40x over ARM."""
    _, _, g_dbsr = best_allocation(INTEL_XEON, models["dbsr"])
    _, _, g_mkl = best_allocation(INTEL_XEON, models["mkl"])
    _, _, g_arm = best_allocation(INTEL_XEON, models["arm"])
    assert 1.3 < g_dbsr / g_mkl < 1.9
    assert 2.0 < g_dbsr / g_arm < 3.6


def test_reference_flat_across_threads(models):
    """Reference SYMGS is serial in-process: single-process thread
    scaling stalls (Fig. 6's flat lines)."""
    g1 = model_hpcg_gflops(INTEL_XEON, models["reference"], 1, 1)
    g56 = model_hpcg_gflops(INTEL_XEON, models["reference"], 1, 56)
    assert g56 / g1 < 2.0
    g_dbsr_1 = model_hpcg_gflops(INTEL_XEON, models["dbsr"], 1, 1)
    g_dbsr_56 = model_hpcg_gflops(INTEL_XEON, models["dbsr"], 1, 56)
    assert g_dbsr_56 / g_dbsr_1 > 5.0


def test_gather_negates_simd_benefit(models):
    """Fig. 8: DBSR with forced gathers loses most of the SIMD gain."""
    g_vec = model_hpcg_gflops(INTEL_XEON, models["dbsr"], 4, 4)
    g_gather = model_hpcg_gflops(INTEL_XEON, models["dbsr-gather"], 4, 4)
    g_novec = model_hpcg_gflops(INTEL_XEON, models["dbsr-novec"], 4, 4)
    assert g_vec >= g_gather
    assert g_gather == pytest.approx(g_novec, rel=0.35)


def test_simd_width_matters(models):
    """AVX512 gains more from vectorization than NEON."""
    xeon_gain = (model_hpcg_gflops(INTEL_XEON, models["dbsr"], 1, 1)
                 / model_hpcg_gflops(INTEL_XEON, models["dbsr-novec"],
                                     1, 1))
    kp_gain = (model_hpcg_gflops(KUNPENG_920, models["dbsr"], 1, 1)
               / model_hpcg_gflops(KUNPENG_920, models["dbsr-novec"],
                                   1, 1))
    assert xeon_gain > kp_gain


def test_best_allocation_uses_all_cores(models):
    p, t, _ = best_allocation(INTEL_XEON, models["dbsr"])
    assert p * t == INTEL_XEON.cores


def test_gflops_positive_and_bounded(models):
    for name, m in models.items():
        g = model_hpcg_gflops(INTEL_XEON, m, 8, 7)
        peak = (INTEL_XEON.cores * INTEL_XEON.freq_ghz
                * 16 * 2)  # generous fp64 peak
        assert 0 < g < peak, name
