"""Unit tests for HPCG FLOP accounting."""

from repro.hpcg.flops import (
    hpcg_flops_per_iteration,
    hpcg_total_flops,
    mg_flops,
    spmv_flops,
    symgs_flops,
)


def test_spmv_flops():
    assert spmv_flops(1000) == 2000


def test_symgs_flops():
    # 2 sweeps x (2*nnz + n).
    assert symgs_flops(nnz=100, n=10) == 2 * (200 + 10)


def test_mg_flops_vs_single_level():
    one = mg_flops(1000, 27_000, n_levels=1)
    assert one == symgs_flops(27_000, 1000)
    four = mg_flops(1000, 27_000, n_levels=4)
    assert four > one


def test_mg_level_geometric_decay():
    """Each coarser level contributes ~1/8 of the finer one."""
    f4 = mg_flops(8**6, 27 * 8**6, n_levels=4)
    f1_fine = 2 * symgs_flops(27 * 8**6, 8**6) + spmv_flops(27 * 8**6)
    # The whole hierarchy costs less than 1.25x the finest level (sum of
    # the 1/8 geometric series is 8/7).
    assert f4 < 1.25 * f1_fine


def test_per_iteration_composition():
    n, nnz = 1000, 27_000
    per = hpcg_flops_per_iteration(n, nnz, n_levels=1)
    expect = spmv_flops(nnz) + mg_flops(n, nnz, 1) + 12 * n
    assert per == expect


def test_total_scales_with_iterations():
    assert hpcg_total_flops(1000, 27_000, 50) == \
        50 * hpcg_flops_per_iteration(1000, 27_000)
