"""BENCH_trace.json schema validation + trace-report helpers."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.observe.report import (
    aggregate_spans,
    canonical_trace,
    collect_bench_trace,
    format_trace_table,
)
from repro.observe.schema_check import (
    REQUIRED_KEYS,
    SCHEMA_ID,
    TraceSchemaError,
    main,
    structural_errors,
    validate_bench_trace,
)

SCHEMA_PATH = Path(__file__).parent / "bench_trace.schema.json"


@pytest.fixture(scope="module")
def report():
    """One small traced workload, shared by every test here."""
    return collect_bench_trace(nx=6, k=2, n_workers=1)


def test_report_has_all_required_keys(report):
    assert structural_errors(report) == []
    for key in REQUIRED_KEYS:
        assert key in report


def test_report_passes_full_jsonschema(report):
    jsonschema = pytest.importorskip("jsonschema")
    schema = json.loads(SCHEMA_PATH.read_text())
    jsonschema.Draft7Validator.check_schema(schema)
    validate_bench_trace(report, schema_path=str(SCHEMA_PATH))


def test_report_is_json_serializable(report):
    assert json.loads(json.dumps(report))["schema"] == SCHEMA_ID


def test_missing_key_detected(report):
    broken = {k: v for k, v in report.items() if k != "metrics"}
    errs = structural_errors(broken)
    assert any("metrics" in e for e in errs)
    with pytest.raises(TraceSchemaError):
        validate_bench_trace(broken)


def test_wrong_schema_id_detected(report):
    broken = dict(report, schema="bogus/v0")
    assert any("schema must be" in e for e in structural_errors(broken))


def test_malformed_span_detected(report):
    broken = copy.deepcopy(report)
    del broken["trace"]["spans"][0]["name"]
    errs = structural_errors(broken)
    assert any("name" in e for e in errs)


def test_counts_shape_enforced(report):
    def walk(spans):
        for sp in spans:
            yield sp
            yield from walk(sp["children"])

    broken = copy.deepcopy(report)
    counted = [sp for sp in walk(broken["trace"]["spans"])
               if sp.get("counts")]
    assert counted, "workload must attribute counts somewhere"
    del counted[0]["counts"]["flops"]
    assert any("flops" in e for e in structural_errors(broken))


def test_schema_check_main(report, tmp_path, capsys):
    good = tmp_path / "BENCH_trace.json"
    good.write_text(json.dumps(report))
    assert main([str(good), str(SCHEMA_PATH)]) == 0
    assert "valid" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "nope"}))
    assert main([str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().err

    assert main([]) == 2  # usage error


# Report helpers -----------------------------------------------------------


def test_aggregate_rows_cover_expected_sites(report):
    names = {r["name"] for r in report["table"]}
    assert {"serve.drain", "serve.compile", "plan.execute"} <= names


def test_aggregate_self_time_excludes_children(report):
    rows = {r["name"]: r for r in report["table"]}
    for row in rows.values():
        assert 0.0 <= row["self_seconds"] <= row["total_seconds"] + 1e-12


def test_plan_execute_rows_carry_op_attribution(report):
    rows = {r["name"]: r for r in report["table"]}
    ex = rows["plan.execute"]
    assert ex["vector_ops"] > 0
    assert ex["flops"] > 0
    assert ex["bytes"] > 0


def test_format_trace_table_renders_all_rows(report):
    text = format_trace_table(report["table"])
    for row in report["table"]:
        assert row["name"] in text
    assert "vops" in text


def test_canonical_trace_strips_nondeterminism(report):
    canon = canonical_trace(report["trace"])

    def walk(spans):
        for sp in spans:
            yield sp
            yield from walk(sp["children"])

    for sp in walk(canon["spans"]):
        assert "seconds" not in sp
        assert "span_id" not in sp
        assert "compile_seconds" not in sp["attrs"]


def test_service_metrics_embedded(report):
    assert report["metrics"]["serve.submitted"]["value"] == \
        report["service"]["submitted"]
    assert "repro_serve_submitted_total" in report["prometheus"]
