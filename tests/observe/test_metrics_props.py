"""Property tests: histogram merge algebra, counter monotonicity."""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observe.metrics import Counter, Histogram

EDGES = (0.001, 0.01, 0.1, 1.0, 10.0)

observations = st.lists(
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    max_size=30)


def _hist(values):
    h = Histogram("h", edges=EDGES)
    for v in values:
        h.observe(v)
    return h


def _key(h: Histogram):
    snap = h.snapshot()
    return (snap["bucket_counts"], snap["count"],
            round(snap["sum"], 9))


@given(observations, observations)
def test_histogram_merge_commutative(xs, ys):
    a, b = _hist(xs), _hist(ys)
    assert _key(a.merge(b)) == _key(b.merge(a))


@given(observations, observations, observations)
def test_histogram_merge_associative(xs, ys, zs):
    a, b, c = _hist(xs), _hist(ys), _hist(zs)
    assert _key(a.merge(b).merge(c)) == _key(a.merge(b.merge(c)))


@given(observations)
def test_histogram_merge_identity(xs):
    a = _hist(xs)
    empty = _hist([])
    assert _key(a.merge(empty)) == _key(a)


@given(observations, observations)
def test_merge_equals_merged_observation_stream(xs, ys):
    # Merging two histograms must equal observing the concatenation.
    assert _key(_hist(xs).merge(_hist(ys))) == _key(_hist(xs + ys))


@settings(max_examples=15, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=0, max_value=20),
                         max_size=25),
                min_size=2, max_size=4))
def test_counter_snapshots_monotone_under_concurrent_increments(incs):
    """Snapshots taken while N threads increment never go backwards,
    and the final value is the exact total."""
    c = Counter("c")
    start = threading.Barrier(len(incs) + 1)

    def worker(values):
        start.wait(timeout=5)
        for v in values:
            c.inc(v)

    threads = [threading.Thread(target=worker, args=(v,)) for v in incs]
    for t in threads:
        t.start()
    start.wait(timeout=5)
    seen = []
    while any(t.is_alive() for t in threads):
        seen.append(c.value)
    for t in threads:
        t.join()
    seen.append(c.value)
    assert all(a <= b for a, b in zip(seen, seen[1:]))
    assert c.value == sum(sum(v) for v in incs)
