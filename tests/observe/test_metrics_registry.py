"""Unit tests for repro.observe.metrics (registry + exporters)."""

from __future__ import annotations

import json

import pytest

from repro.observe.metrics import (
    LATENCY_EDGES,
    WIDTH_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)


def test_counter_monotone():
    c = Counter("serve.submitted")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(MetricError):
        c.inc(-1)
    assert c.value == 5  # the rejected update must not apply


def test_gauge_moves_both_ways():
    g = Gauge("serve.pending")
    g.set(10)
    g.inc(2)
    g.dec(5)
    assert g.value == 7


def test_invalid_metric_names_rejected():
    for bad in ("", "has space", "new\nline"):
        with pytest.raises(MetricError):
            Counter(bad)


def test_histogram_bucketing_against_edges():
    h = Histogram("h", edges=(1.0, 10.0))
    for v in (0.5, 1.0, 5.0, 10.0, 11.0):
        h.observe(v)
    # v <= 1.0 -> bucket 0; <= 10.0 -> bucket 1; else +Inf bucket.
    assert h.bucket_counts() == [2, 2, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(27.5)


def test_histogram_edge_validation():
    with pytest.raises(MetricError):
        Histogram("h", edges=())
    with pytest.raises(MetricError):
        Histogram("h", edges=(1.0, 1.0))
    with pytest.raises(MetricError):
        Histogram("h", edges=(1.0, float("inf")))


def test_histogram_merge_requires_same_edges():
    a = Histogram("h", edges=(1.0, 2.0))
    b = Histogram("h", edges=(1.0, 3.0))
    with pytest.raises(MetricError):
        a.merge(b)


def test_histogram_merge_is_pure_and_exact():
    a = Histogram("h", edges=LATENCY_EDGES)
    b = Histogram("h", edges=LATENCY_EDGES)
    a.observe(0.0005)
    b.observe(2.0)
    m = a.merge(b)
    assert m is not a and m is not b
    assert m.count == 2
    assert a.count == 1 and b.count == 1  # operands untouched
    assert m.bucket_counts() == [
        x + y for x, y in zip(a.bucket_counts(), b.bucket_counts())]


def test_registry_idempotent_registration():
    reg = MetricsRegistry()
    a = reg.counter("serve.submitted", "help text")
    b = reg.counter("serve.submitted")
    assert a is b
    assert len(reg) == 1


def test_registry_type_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(MetricError):
        reg.gauge("x")


def test_registry_snapshot_and_json():
    reg = MetricsRegistry()
    reg.counter("a.count").inc(3)
    reg.gauge("a.gauge").set(-2)
    reg.histogram("a.hist", edges=WIDTH_EDGES).observe(4.0)
    snap = reg.snapshot()
    assert snap["a.count"] == {"type": "counter", "value": 3}
    assert snap["a.gauge"]["value"] == -2
    assert snap["a.hist"]["count"] == 1
    assert json.loads(reg.to_json()) == snap
    assert reg.names() == ["a.count", "a.gauge", "a.hist"]


def test_prometheus_text_format():
    reg = MetricsRegistry(prefix="repro")
    reg.counter("serve.submitted", "requests accepted").inc(7)
    reg.gauge("serve.pending").set(2)
    h = reg.histogram("serve.batch-width", edges=(1.0, 4.0))
    h.observe(1.0)
    h.observe(3.0)
    h.observe(100.0)
    text = reg.to_prometheus_text()
    lines = text.splitlines()
    assert "# HELP repro_serve_submitted_total requests accepted" in lines
    assert "# TYPE repro_serve_submitted_total counter" in lines
    assert "repro_serve_submitted_total 7" in lines
    assert "repro_serve_pending 2" in lines
    # Histogram buckets are cumulative, dashes mapped to underscores.
    assert 'repro_serve_batch_width_bucket{le="1.0"} 1' in lines
    assert 'repro_serve_batch_width_bucket{le="4.0"} 2' in lines
    assert 'repro_serve_batch_width_bucket{le="+Inf"} 3' in lines
    assert "repro_serve_batch_width_count 3" in lines
    assert text.endswith("\n")


def test_prometheus_no_prefix():
    reg = MetricsRegistry(prefix="")
    reg.counter("c").inc()
    assert "c_total 1" in reg.to_prometheus_text()
