"""Unit tests for the structured tracing core (repro.observe.trace)."""

from __future__ import annotations

import threading

import pytest

from repro.observe import trace
from repro.observe.trace import Span, Tracer
from repro.simd.counters import OpCounter


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with the module slot disarmed."""
    trace.uninstall()
    yield
    trace.uninstall()


def _fake_clock(times):
    it = iter(times)
    return lambda: next(it)


def test_span_nesting_and_ids():
    tr = Tracer()
    with tr.span("outer") as outer:
        with tr.span("inner") as inner:
            assert tr.current() is inner
        assert tr.current() is outer
    assert tr.current() is None
    assert [sp.name for sp in tr.walk()] == ["outer", "inner"]
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert outer.children == [inner]


def test_span_timing_uses_injected_clock():
    tr = Tracer(clock=_fake_clock([10.0, 12.5]))
    with tr.span("timed") as sp:
        pass
    assert sp.seconds == pytest.approx(2.5)


def test_span_closed_even_when_body_raises():
    tr = Tracer(clock=_fake_clock([0.0, 1.0]))
    with pytest.raises(RuntimeError):
        with tr.span("boom"):
            raise RuntimeError("x")
    assert tr.current() is None
    assert tr.roots[0].seconds == pytest.approx(1.0)


def test_sibling_spans_share_parent():
    tr = Tracer()
    with tr.span("parent"):
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
    parent = tr.roots[0]
    assert [c.name for c in parent.children] == ["a", "b"]
    assert tr.n_spans == 3


def test_events_attach_to_current_span_or_root():
    tr = Tracer()
    tr.event("orphan", k=1)
    with tr.span("s"):
        tr.event("inside", k=2)
    assert tr.events == [{"name": "orphan", "attrs": {"k": 1}}]
    assert tr.roots[0].events == [{"name": "inside", "attrs": {"k": 2}}]


def test_set_counts_serializes_opcounter():
    tr = Tracer()
    c = OpCounter(bsize=4)
    c.vload = 7
    c.bytes_values = 224
    with tr.span("k") as sp:
        sp.set_counts(c)
    assert sp.counts["ops"]["vload"] == 7
    assert sp.counts["bytes"]["values"] == 224
    assert sp.counts["bsize"] == 4


def test_add_counts_targets_current_span():
    tr = Tracer()
    trace.install(tr)
    c = OpCounter(bsize=1)
    c.sflop = 3
    with tr.span("k"):
        trace.add_counts(c)
    assert tr.roots[0].counts["ops"]["sflop"] == 3


def test_threads_build_separate_subtrees():
    tr = Tracer()
    barrier = threading.Barrier(2)

    def work(name):
        with tr.span(name):
            barrier.wait(timeout=5)

    threads = [threading.Thread(target=work, args=(f"t{i}",))
               for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Both spans are roots (thread-local stacks), not nested.
    assert sorted(sp.name for sp in tr.roots) == ["t0", "t1"]
    assert all(not sp.children for sp in tr.roots)


def test_to_dict_roundtrips_through_json():
    import json

    tr = Tracer()
    with tr.span("a", op="lower"):
        tr.event("e", n=1)
    d = tr.to_dict()
    assert d["schema"] == "dbsr-repro/trace/v1"
    assert json.loads(json.dumps(d)) == d


# Module-level slot ------------------------------------------------------


def test_module_span_disarmed_is_shared_null():
    a = trace.span("x")
    b = trace.span("y", attr=1)
    assert a is b is trace.null_span()
    with a as sp:
        assert sp is None


def test_module_span_armed_records():
    tr = Tracer()
    trace.install(tr)
    with trace.span("site", k=2) as sp:
        assert isinstance(sp, Span)
    assert tr.roots[0].attrs == {"k": 2}
    trace.uninstall(tr)
    assert trace.active() is None


def test_uninstall_other_tracer_is_noop():
    a, b = Tracer(), Tracer()
    trace.install(a)
    trace.uninstall(b)  # b was never active: a must survive
    assert trace.active() is a


def test_event_disarmed_is_noop():
    trace.event("nothing", x=1)  # must not raise


def test_tracing_contextmanager_installs_and_uninstalls():
    with trace.tracing() as tr:
        assert trace.active() is tr
        with trace.span("in"):
            pass
    assert trace.active() is None
    assert tr.roots[0].name == "in"


def test_tracing_uninstalls_on_error():
    with pytest.raises(ValueError):
        with trace.tracing():
            raise ValueError("boom")
    assert trace.active() is None
