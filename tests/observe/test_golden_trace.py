"""Golden-trace differential suite (the tentpole's acceptance tests).

Runs fixed-seed workloads (27-point stencil, bsize 4 and 8, DBSR /
SELL strategies, fault-forced rung descents) under a fresh tracer and
asserts three contracts:

1. **Topology** — the canonical trace (span names, nesting, attrs,
   events, attributed counts; timings and ids stripped) equals the
   checked-in golden under ``tests/observe/goldens/``.  Regenerate
   with ``pytest tests/observe -q --update-goldens`` after deliberate
   instrumentation changes, and review the golden diff like code.
2. **Attribution** — every ``plan.execute`` span carries op counts
   equal to the closed forms in :mod:`repro.kernels.counts` exactly.
3. **Differential execution** — DBSR, SELL, and ordered-CSR rungs
   produce bit-identical solutions for the same traced inputs, and a
   traced run is bit-identical to an untraced one (observability must
   never perturb the numerics).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.observe import trace
from repro.observe.report import canonical_trace
from repro.observe.trace import counts_dict
from repro.resilience.fallback import CircuitBreaker, FallbackChain
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serve.cache import PlanCache
from repro.serve.plan import PlanConfig, compile_plan

GOLDEN_DIR = Path(__file__).parent / "goldens"
GRID = StructuredGrid((6, 6, 6))
STENCIL = "27pt"
OPS = ("lower", "upper", "spmv", "symgs")
SEED = 2024

PLAN_CASES = [("dbsr", 4), ("dbsr", 8), ("sell", 4)]
PLAN_IDS = [f"{s}-b{b}" for s, b in PLAN_CASES]


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    trace.uninstall()
    yield
    trace.uninstall()


def _rhs(plan):
    return np.random.default_rng(SEED).standard_normal(plan.n)


def _run_plan_case(strategy, bsize, backend="numpy-fast"):
    """Compile + run all four ops under a fresh tracer."""
    with trace.tracing() as tr:
        plan = compile_plan(GRID, STENCIL,
                            PlanConfig(bsize=bsize, strategy=strategy,
                                       backend=backend))
        b = _rhs(plan)
        results = {op: plan.execute(op, b) for op in OPS}
    return tr, plan, results


def _run_fallback_case(strategies, max_fires):
    """Force a rung descent with an injected kernel crash."""
    cache = PlanCache(capacity=4)
    with trace.tracing() as tr:
        plan, _ = cache.get_or_compile(GRID, STENCIL, PlanConfig(bsize=4))
        chain = FallbackChain(cache=cache, backoff_base=0.0,
                              breaker=CircuitBreaker(threshold=99))
        fault = FaultPlan((FaultSpec("kernel_exception",
                                     strategies=strategies,
                                     max_fires=max_fires),))
        with inject(fault):
            res = chain.execute(plan, "lower", _rhs(plan))
    return tr, plan, res


@pytest.fixture()
def golden(request):
    """Compare-or-regenerate helper for canonical-trace goldens."""
    update = request.config.getoption("--update-goldens")

    def check(name: str, canon: dict):
        # Round-trip through JSON so tuples/np scalars normalize the
        # same way the stored golden did.
        got = json.loads(json.dumps(canon, sort_keys=True))
        path = GOLDEN_DIR / f"{name}.json"
        if update:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(got, indent=2, sort_keys=True)
                            + "\n")
            pytest.skip(f"golden {name} regenerated")
        assert path.exists(), (
            f"missing golden {path.name}; run "
            f"pytest tests/observe --update-goldens to create it")
        assert got == json.loads(path.read_text()), (
            f"canonical trace diverged from golden {path.name}; if the "
            f"instrumentation change is deliberate, regenerate with "
            f"--update-goldens and review the diff")

    return check


# 1. Span topology ---------------------------------------------------------


@pytest.mark.parametrize("strategy,bsize", PLAN_CASES, ids=PLAN_IDS)
def test_plan_trace_matches_golden(strategy, bsize, golden):
    tr, _plan, _ = _run_plan_case(strategy, bsize)
    golden(f"plan-{strategy}-b{bsize}", canonical_trace(tr.to_dict()))


def test_counted_backend_trace_matches_golden(golden):
    """Per-backend golden: the counted tier's span topology differs
    from numpy-fast only in the ``backend`` attrs and the fingerprint
    (the requested backend is part of the structural fingerprint)."""
    tr, plan, _ = _run_plan_case("dbsr", 4, backend="numpy-counted")
    assert plan._backend().name == "numpy-counted"
    golden("plan-dbsr-b4-counted", canonical_trace(tr.to_dict()))


def test_counted_and_fast_goldens_differ_only_in_backend_and_fp():
    fast = json.loads((GOLDEN_DIR / "plan-dbsr-b4.json").read_text())
    counted = json.loads(
        (GOLDEN_DIR / "plan-dbsr-b4-counted.json").read_text())
    blob_f = json.dumps(fast, sort_keys=True)
    blob_c = json.dumps(counted, sort_keys=True)
    fp_f = fast["spans"][0]["attrs"]["fingerprint"]
    fp_c = counted["spans"][0]["attrs"]["fingerprint"]
    assert fp_f != fp_c
    normalized = blob_c.replace(fp_c, fp_f).replace(
        '"numpy-counted"', '"numpy-fast"')
    assert normalized == blob_f


def test_fallback_sell_descent_matches_golden(golden):
    tr, _plan, res = _run_fallback_case(("dbsr",), 1)
    assert (res.depth, res.rung) == (1, "sell")
    golden("fallback-sell", canonical_trace(tr.to_dict()))


def test_fallback_csr_descent_matches_golden(golden):
    tr, _plan, res = _run_fallback_case(("dbsr", "sell"), 2)
    assert (res.depth, res.rung) == (2, "csr")
    golden("fallback-csr", canonical_trace(tr.to_dict()))


def test_canonical_trace_is_run_invariant():
    """Two runs of the same seeded workload canonicalize identically
    even though raw timings and span ids differ."""
    tr1, _, _ = _run_plan_case("dbsr", 4)
    tr2, _, _ = _run_plan_case("dbsr", 4)
    d1, d2 = tr1.to_dict(), tr2.to_dict()
    # Raw traces carry wall-clock noise; the canonical form strips it.
    assert "seconds" in d1["spans"][0]
    assert "seconds" not in canonical_trace(d1)["spans"][0]
    assert canonical_trace(d1) == canonical_trace(d2)


# 2. Attributed counts equal the closed forms ------------------------------


@pytest.mark.parametrize("strategy,bsize", PLAN_CASES, ids=PLAN_IDS)
def test_span_counts_equal_closed_forms(strategy, bsize):
    tr, plan, _ = _run_plan_case(strategy, bsize)
    execs = [sp for sp in tr.walk() if sp.name == "plan.execute"]
    assert [sp.attrs["op"] for sp in execs] == list(OPS)
    for sp in execs:
        expect = plan.op_counts(sp.attrs["op"], sp.attrs["k"])
        assert sp.counts == counts_dict(expect), sp.attrs["op"]
        assert sp.counts["bsize"] == bsize


def test_fallback_sell_rung_counts_equal_closed_forms():
    from repro.kernels.counts import sptrsv_sell_counts

    tr, plan, _res = _run_fallback_case(("dbsr",), 1)
    sell_execs = [sp for sp in tr.walk()
                  if sp.name == "plan.execute"
                  and sp.attrs["strategy"] == "sell"]
    assert len(sell_execs) == 1
    arts = plan._fallback_sell  # cached by the chain's sell rung
    expect = sptrsv_sell_counts(arts["lower"], divide=True)
    assert sell_execs[0].counts == counts_dict(expect)


# 3. Differential execution ------------------------------------------------


def test_rungs_bit_identical_under_traced_inputs():
    cache = PlanCache(capacity=4)
    with trace.tracing():
        pd, _ = cache.get_or_compile(GRID, STENCIL, PlanConfig(bsize=4))
        ps, _ = cache.get_or_compile(GRID, STENCIL,
                                     PlanConfig(bsize=4, strategy="sell"))
        chain = FallbackChain(cache=cache, backoff_base=0.0)
        b = _rhs(pd)
        for op in ("lower", "upper"):
            xd = pd.execute(op, b)
            assert np.array_equal(xd, ps.execute(op, b)), op
            assert np.array_equal(
                xd, chain.execute_reference(pd, op, b)), op
        for op in ("spmv", "symgs"):
            assert np.array_equal(pd.execute(op, b),
                                  ps.execute(op, b)), op


def test_csr_descent_bitwise_equals_reference():
    tr, plan, res = _run_fallback_case(("dbsr", "sell"), 2)
    ref = FallbackChain(backoff_base=0.0).execute_reference(
        plan, "lower", _rhs(plan))
    assert np.array_equal(res.solution, ref)


def test_traced_run_bitwise_equals_untraced():
    plan = compile_plan(GRID, STENCIL, PlanConfig(bsize=4))
    b = _rhs(plan)
    untraced = {op: plan.execute(op, b) for op in OPS}
    with trace.tracing() as tr:
        traced = {op: plan.execute(op, b) for op in OPS}
    assert tr.n_spans == len(OPS)
    for op in OPS:
        assert np.array_equal(untraced[op], traced[op]), op


@pytest.mark.parametrize("strategy,bsize", PLAN_CASES, ids=PLAN_IDS)
def test_backend_tiers_bit_identical_on_golden_cases(strategy, bsize):
    """Acceptance criterion: every backend is bit-identical to the
    counted twin on every golden-trace case, pinned the same way
    traced ≡ untraced is."""
    from repro.backends.numba_backend import NumbaBackend

    _, counted_plan, counted = _run_plan_case(strategy, bsize,
                                              backend="numpy-counted")
    _, fast_plan, fast = _run_plan_case(strategy, bsize,
                                        backend="numpy-fast")
    nb = NumbaBackend(jit=False)
    b = _rhs(counted_plan)
    for op in OPS:
        assert np.array_equal(fast[op], counted[op]), op
        Bp = fast_plan.extend(b.reshape(-1, 1))
        got = fast_plan.restrict(nb.run(fast_plan, op, Bp))[:, 0]
        assert np.array_equal(got, counted[op]), op


@pytest.mark.parametrize("strategy,bsize", PLAN_CASES, ids=PLAN_IDS)
def test_jit_bit_identical_to_counted_on_golden_cases(strategy, bsize):
    """jit ≡ counted on the golden cases (requires numba)."""
    pytest.importorskip("numba")
    _, _, counted = _run_plan_case(strategy, bsize,
                                   backend="numpy-counted")
    _, jit_plan, jit = _run_plan_case(strategy, bsize, backend="numba")
    assert jit_plan._backend().name == "numba"
    for op in OPS:
        assert np.array_equal(jit[op], counted[op]), op


# 4. Zero added ops on the clean path (acceptance criterion) ---------------


@pytest.mark.parametrize("installed", [False, True],
                         ids=["tracer-absent", "tracer-installed"])
def test_counted_kernel_sees_zero_added_ops(installed, reordered_3d):
    """The instrumented vector engine must count exactly the closed
    forms whether or not a tracer is live: tracing adds no vector or
    scalar ops to the counted path."""
    from repro.formats.dbsr import DBSRMatrix
    from repro.kernels.counts import sptrsv_dbsr_counts
    from repro.kernels.sptrsv_csr import split_triangular
    from repro.kernels.sptrsv_dbsr import sptrsv_dbsr_lower_counted
    from repro.simd.engine import VectorEngine

    csr, dbsr = reordered_3d
    L, D, _U = split_triangular(csr)
    Ld = DBSRMatrix.from_csr(L, dbsr.bsize)
    b = np.random.default_rng(SEED).standard_normal(L.n_rows)
    eng = VectorEngine(dbsr.bsize)
    if installed:
        with trace.tracing():
            sptrsv_dbsr_lower_counted(Ld, b, eng, diag=D)
    else:
        assert trace.active() is None
        sptrsv_dbsr_lower_counted(Ld, b, eng, diag=D)
    expect = sptrsv_dbsr_counts(Ld, divide=True)
    got = eng.counter
    # Fields the counted twin models (same set the kernel suite pins);
    # tracing must not add a single op or byte to any of them.
    for f in ("vload", "vstore", "vgather", "vscatter", "vfma",
              "vdiv", "bytes_values", "bytes_index", "bytes_vector",
              "bytes_gathered"):
        assert getattr(got, f) == getattr(expect, f), f
