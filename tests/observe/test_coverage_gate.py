"""Unit tests for the CI coverage gate (repro.utils.coverage_gate).

The gate itself runs in CI where the ``coverage`` package is
installed; here we drive it with synthetic ``coverage json`` payloads
so the policy logic is pinned without that dependency.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.utils.coverage_gate import (
    _observe_percent,
    check_coverage,
    main,
)

BASELINE_PATH = Path(__file__).parent / "coverage_baseline.json"


def _report(total=92.0, observe_covered=95, observe_statements=100):
    return {
        "totals": {"percent_covered": total},
        "files": {
            "src/repro/observe/trace.py": {
                "summary": {"covered_lines": observe_covered,
                            "num_statements": observe_statements}},
            "src/repro/serve/plan.py": {
                "summary": {"covered_lines": 50,
                            "num_statements": 60}},
        },
    }


BASELINE = {"total_min": 85.0, "observe_min": 90.0}


def test_gate_passes_above_both_floors():
    assert check_coverage(_report(), BASELINE) == []


def test_gate_fails_below_total_floor():
    problems = check_coverage(_report(total=80.0), BASELINE)
    assert len(problems) == 1
    assert "total coverage" in problems[0]


def test_gate_fails_below_observe_floor():
    problems = check_coverage(
        _report(observe_covered=80), BASELINE)
    assert len(problems) == 1
    assert "src/repro/observe/" in problems[0]


def test_gate_reports_both_violations():
    problems = check_coverage(
        _report(total=10.0, observe_covered=10), BASELINE)
    assert len(problems) == 2


def test_gate_requires_observe_files_present():
    report = {"totals": {"percent_covered": 99.0},
              "files": {"src/repro/serve/plan.py": {
                  "summary": {"covered_lines": 1,
                              "num_statements": 1}}}}
    problems = check_coverage(report, BASELINE)
    assert any("no src/repro/observe/" in p for p in problems)


def test_gate_rejects_report_without_totals():
    assert check_coverage({}, BASELINE) == [
        "coverage report has no totals.percent_covered"]


def test_observe_percent_aggregates_across_files():
    files = {
        "src/repro/observe/trace.py": {
            "summary": {"covered_lines": 90, "num_statements": 100}},
        "src\\repro\\observe\\metrics.py": {  # windows separators
            "summary": {"covered_lines": 50, "num_statements": 100}},
        "src/repro/serve/plan.py": {
            "summary": {"covered_lines": 0, "num_statements": 100}},
    }
    assert _observe_percent(files) == 70.0
    assert _observe_percent({}) is None


def test_checked_in_baseline_is_valid():
    baseline = json.loads(BASELINE_PATH.read_text())
    assert baseline["observe_min"] == 90.0
    assert 0.0 < baseline["total_min"] <= 100.0


def test_main_exit_codes(tmp_path, capsys):
    rep = tmp_path / "coverage.json"
    rep.write_text(json.dumps(_report()))
    assert main([str(rep), str(BASELINE_PATH)]) == 0
    assert "coverage gate ok" in capsys.readouterr().out

    rep.write_text(json.dumps(_report(total=10.0)))
    assert main([str(rep), str(BASELINE_PATH)]) == 1
    assert "COVERAGE GATE" in capsys.readouterr().err

    assert main(["only-one-arg"]) == 2
