"""Unit tests for scalar ILU(0) — Algorithm 3."""

import numpy as np
import pytest

from repro.ilu.ilu0_csr import (
    ilu0_apply_csr,
    ilu0_factorize_csr,
    split_lu,
)
from repro.simd.counters import OpCounter


def test_exact_lu_on_full_pattern(rng):
    """With a dense pattern ILU(0) is exact LU: L U == A."""
    from repro.formats.csr import CSRMatrix

    n = 8
    dense = rng.standard_normal((n, n))
    dense[np.arange(n), np.arange(n)] = np.abs(dense).sum(axis=1) + 1
    A = CSRMatrix.from_dense(dense)
    f = ilu0_factorize_csr(A)
    L, U = split_lu(f)
    assert np.allclose(L @ U, dense)


def test_pattern_preserved(problem_2d):
    A = problem_2d.matrix
    f = ilu0_factorize_csr(A)
    assert np.array_equal(f.factored.indptr, A.indptr)
    assert np.array_equal(f.factored.indices, A.indices)


def test_residual_matches_pattern_only(problem_2d):
    """L U == A on the pattern; the mismatch lives strictly outside."""
    A = problem_2d.matrix
    f = ilu0_factorize_csr(A)
    L, U = split_lu(f)
    R = L @ U - A.to_dense()
    pattern = A.to_dense() != 0
    assert np.allclose(R[pattern], 0.0, atol=1e-12)


def test_apply_solves_lu_system(problem_2d, rng):
    A = problem_2d.matrix
    f = ilu0_factorize_csr(A)
    L, U = split_lu(f)
    r = rng.standard_normal(problem_2d.n)
    z = ilu0_apply_csr(f, r)
    assert np.allclose(L @ (U @ z), r)


def test_preconditioner_improves_conditioning(problem_2d):
    A = problem_2d.matrix.to_dense()
    f = ilu0_factorize_csr(problem_2d.matrix)
    L, U = split_lu(f)
    M = L @ U
    precond = np.linalg.solve(M, A)
    assert np.linalg.cond(precond) < np.linalg.cond(A)


def test_spd_pivots_positive(problem_3d_27pt):
    f = ilu0_factorize_csr(problem_3d_27pt.matrix)
    assert np.all(f.diag > 0)


def test_missing_diagonal_rejected():
    from repro.formats.csr import CSRMatrix

    dense = np.array([[0.0, 1.0], [1.0, 1.0]])
    with pytest.raises(ValueError):
        ilu0_factorize_csr(CSRMatrix.from_dense(dense))


def test_counter_tallies_work(problem_2d):
    c = OpCounter(bsize=1)
    ilu0_factorize_csr(problem_2d.matrix, counter=c)
    assert c.sdiv > 0
    assert c.sflop > 0


def test_factorization_unique_under_valid_reordering(problem_2d, rng):
    """ILU(0) factors are determined by the pattern, not by a
    reordering that respects dependencies (identity here)."""
    A = problem_2d.matrix
    f1 = ilu0_factorize_csr(A)
    f2 = ilu0_factorize_csr(A)
    assert np.allclose(f1.factored.data, f2.factored.data)
