"""Unit tests for the DBSR block ILU(0) — Algorithm 4."""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.ilu.ilu0_csr import ilu0_apply_csr, ilu0_factorize_csr
from repro.ilu.ilu0_dbsr import ilu0_apply_dbsr, ilu0_factorize_dbsr
from repro.simd.counters import OpCounter


def expanded_pattern_csr(dbsr):
    """CSR carrying every tile lane (padding zeros explicit)."""
    rows, cols, vals = [], [], []
    bs = dbsr.bsize
    anch = dbsr.anchors
    for i in range(dbsr.brow):
        for t in range(dbsr.blk_ptr[i], dbsr.blk_ptr[i + 1]):
            for lane in range(bs):
                c = anch[t] + lane
                if 0 <= c < dbsr.n_cols:
                    rows.append(i * bs + lane)
                    cols.append(c)
                    vals.append(dbsr.values[t, lane])
    coo = COOMatrix(np.array(rows), np.array(cols),
                    np.array(vals, dtype=float), dbsr.shape)
    return CSRMatrix.from_coo(coo)


def dbsr_to_dense_all_lanes(factors):
    m = factors.matrix
    dense = np.zeros(m.shape)
    anch = m.anchors
    for i in range(m.brow):
        for t in range(m.blk_ptr[i], m.blk_ptr[i + 1]):
            for lane in range(m.bsize):
                c = anch[t] + lane
                if 0 <= c < m.n_cols:
                    dense[i * m.bsize + lane, c] = m.values[t, lane]
    return dense


@pytest.mark.parametrize("fixture", ["reordered_2d", "reordered_3d"])
def test_matches_scalar_ilu0_on_expanded_pattern(fixture, request):
    csr, dbsr = request.getfixturevalue(fixture)
    f_blk = ilu0_factorize_dbsr(dbsr)
    f_ref = ilu0_factorize_csr(expanded_pattern_csr(dbsr))
    assert np.allclose(dbsr_to_dense_all_lanes(f_blk),
                       f_ref.factored.to_dense(), atol=1e-12)


def test_matches_strict_ilu0_in_practice(reordered_3d):
    """On vBMC-ordered stencil matrices no padding-lane fill occurs, so
    the block factorization equals strict ILU(0) (the paper's 'does
    not change the number of non-zero elements' claim)."""
    csr, dbsr = reordered_3d
    f_blk = ilu0_factorize_dbsr(dbsr)
    f_ref = ilu0_factorize_csr(csr)
    blk_dense = dbsr_to_dense_all_lanes(f_blk)
    assert np.allclose(blk_dense, f_ref.factored.to_dense(), atol=1e-12)


def test_apply_matches_scalar(reordered_3d, rng):
    csr, dbsr = reordered_3d
    f_blk = ilu0_factorize_dbsr(dbsr)
    f_ref = ilu0_factorize_csr(csr)
    r = rng.standard_normal(csr.n_rows)
    assert np.allclose(ilu0_apply_dbsr(f_blk, r),
                       ilu0_apply_csr(f_ref, r))


def test_apply_solves_lu(reordered_2d, rng):
    csr, dbsr = reordered_2d
    f = ilu0_factorize_dbsr(dbsr)
    r = rng.standard_normal(csr.n_rows)
    z = ilu0_apply_dbsr(f, r)
    L = np.tril(dbsr_to_dense_all_lanes(f), -1) + np.eye(csr.n_rows)
    U = np.triu(dbsr_to_dense_all_lanes(f))
    assert np.allclose(L @ (U @ z), r)


def test_no_nans_from_interference(reordered_3d):
    """The masked division must never create NaN/inf values."""
    _, dbsr = reordered_3d
    f = ilu0_factorize_dbsr(dbsr)
    assert np.all(np.isfinite(f.matrix.values))


def test_diag_vector(reordered_2d):
    csr, dbsr = reordered_2d
    f = ilu0_factorize_dbsr(dbsr)
    ref = ilu0_factorize_csr(csr)
    assert np.allclose(f.diag_vector(), ref.diag)


def test_counter_tallies(reordered_2d):
    _, dbsr = reordered_2d
    c = OpCounter(bsize=dbsr.bsize)
    ilu0_factorize_dbsr(dbsr, counter=c)
    assert c.vdiv > 0
    assert c.vfma > 0


def test_skeleton_shared_not_values(reordered_2d):
    _, dbsr = reordered_2d
    before = dbsr.values.copy()
    f = ilu0_factorize_dbsr(dbsr)
    # Input untouched, output differs.
    assert np.array_equal(dbsr.values, before)
    assert not np.allclose(f.matrix.values, before)


def test_requires_diagonal_tiles():
    # Block-row 1 (rows 4..7) has no main-diagonal tile at all.
    dense = np.zeros((8, 8))
    dense[:4, :4] = np.eye(4)
    dense[4:, 0] = 1.0
    csr = CSRMatrix.from_dense(dense)
    from repro.formats.dbsr import DBSRMatrix

    dbsr = DBSRMatrix.from_csr(csr, 4)
    with pytest.raises(ValueError):
        ilu0_factorize_dbsr(dbsr)
