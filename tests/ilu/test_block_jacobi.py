"""Unit tests for block-Jacobi ILU(0)."""

import numpy as np

from repro.ilu.block_jacobi import block_jacobi_apply, block_jacobi_ilu0
from repro.ilu.ilu0_csr import ilu0_apply_csr, ilu0_factorize_csr


def test_single_chunk_equals_global_ilu(problem_2d, rng):
    A = problem_2d.matrix
    bj = block_jacobi_ilu0(A, 1)
    ref = ilu0_factorize_csr(A)
    r = rng.standard_normal(problem_2d.n)
    assert np.allclose(block_jacobi_apply(bj, r), ilu0_apply_csr(ref, r))
    assert bj.dropped_nnz == 0


def test_chunks_drop_couplings(problem_2d):
    A = problem_2d.matrix
    bj = block_jacobi_ilu0(A, 4)
    assert bj.n_chunks == 4
    assert bj.dropped_nnz > 0


def test_more_chunks_drop_more(problem_3d_27pt):
    A = problem_3d_27pt.matrix
    d2 = block_jacobi_ilu0(A, 2).dropped_nnz
    d8 = block_jacobi_ilu0(A, 8).dropped_nnz
    assert d8 > d2


def test_apply_block_diagonal_exact(problem_2d, rng):
    """Each chunk solves its own LU exactly."""
    A = problem_2d.matrix
    bj = block_jacobi_ilu0(A, 4)
    r = rng.standard_normal(problem_2d.n)
    z = block_jacobi_apply(bj, r)
    for c in range(4):
        lo, hi = int(bj.bounds[c]), int(bj.bounds[c + 1])
        f = bj.factors[c]
        L = f.lower.to_dense() + np.eye(hi - lo)
        U = f.upper.to_dense() + np.diag(f.diag)
        assert np.allclose(L @ (U @ z[lo:hi]), r[lo:hi])


def test_preconditioner_degrades_with_chunks(problem_3d_27pt):
    """The Fig. 9 effect: more BJ chunks -> slower convergence."""
    from repro.solvers.stationary import preconditioned_richardson

    A = problem_3d_27pt.matrix
    b = problem_3d_27pt.rhs
    iters = []
    for chunks in (1, 8, 64):
        bj = block_jacobi_ilu0(A, chunks)
        _, hist = preconditioned_richardson(
            A, b, lambda r, bj=bj: block_jacobi_apply(bj, r),
            tol=1e-8, maxiter=300)
        assert hist.converged
        iters.append(hist.iterations)
    assert iters[0] <= iters[1] <= iters[2]
    assert iters[2] > iters[0]
