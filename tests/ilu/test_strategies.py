"""Unit tests for the named ILU(0) parallel strategies."""

import numpy as np
import pytest

from repro.ilu.strategies import STRATEGY_NAMES, make_strategy
from repro.solvers.stationary import preconditioned_richardson


@pytest.fixture(scope="module")
def problem():
    from repro.grids.problems import poisson_problem

    return poisson_problem((8, 8, 8), "7pt")


@pytest.mark.parametrize("name", STRATEGY_NAMES)
def test_every_strategy_preconditions(problem, name):
    s = make_strategy(name, problem, n_workers=4, bsize=4)
    s.factorize()
    _, hist = preconditioned_richardson(
        problem.matrix, problem.rhs, s.apply, tol=1e-8, maxiter=300)
    assert hist.converged, name
    assert hist.iterations < 300


def test_serial_strategy_is_reference(problem, rng):
    from repro.ilu.ilu0_csr import ilu0_apply_csr, ilu0_factorize_csr

    s = make_strategy("serial", problem)
    s.factorize()
    ref = ilu0_factorize_csr(problem.matrix)
    r = rng.standard_normal(problem.n)
    assert np.allclose(s.apply(r), ilu0_apply_csr(ref, r))


def test_mc_converges_slower_than_bmc(problem):
    """The §V-E observation: MC needs significantly more iterations."""
    iters = {}
    for name in ("serial", "mc", "bmc-fix"):
        s = make_strategy(name, problem, n_workers=8)
        s.factorize()
        _, hist = preconditioned_richardson(
            problem.matrix, problem.rhs, s.apply, tol=1e-8, maxiter=400)
        iters[name] = hist.iterations
    assert iters["mc"] > iters["bmc-fix"]
    assert iters["serial"] <= iters["bmc-fix"]


def test_dbsr_converges_like_bmc(problem):
    """Vectorized BMC keeps BMC's convergence rate (§III-A)."""
    reps = {}
    for name in ("bmc-fix", "dbsr-fix"):
        s = make_strategy(name, problem, n_workers=8, bsize=4)
        s.factorize()
        _, hist = preconditioned_richardson(
            problem.matrix, problem.rhs, s.apply, tol=1e-8, maxiter=400)
        reps[name] = hist.iterations
    assert abs(reps["dbsr-fix"] - reps["bmc-fix"]) <= 2


def test_strategy_metadata(problem):
    s = make_strategy("dbsr-auto", problem, n_workers=4, bsize=4)
    s.factorize()
    assert s.parallelism >= 1
    assert s.barriers_per_apply() == 2 * s.n_colors
    c = s.smoothing_counter()
    assert c.vfma > 0
    assert c.bytes_gathered == 0  # gather-free
    assert s.factor_counter is not None


def test_bj_metadata(problem):
    s = make_strategy("bj", problem, n_workers=4)
    s.factorize()
    assert s.barriers_per_apply() == 0
    assert s.parallelism == 4.0


def test_csr_strategy_counter_has_gathers(problem):
    s = make_strategy("bmc-auto", problem, n_workers=4)
    s.factorize()
    assert s.smoothing_counter().bytes_gathered > 0


def test_unknown_name_rejected(problem):
    with pytest.raises(ValueError):
        make_strategy("turbo", problem)
