"""ILU rungs of the fallback chain: degrade bitwise, heal bitwise."""

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.resilience.fallback import CircuitBreaker, FallbackChain
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serve.cache import PlanCache
from repro.serve.plan import PlanConfig

pytestmark = pytest.mark.chaos

GRID = StructuredGrid((6, 6, 6))
CONFIG = PlanConfig(strategy="dbsr", bsize=4)


def _chain(cache=None, **kw):
    kw.setdefault("backoff_base", 0.0)
    kw.setdefault("breaker", CircuitBreaker(threshold=3))
    return FallbackChain(cache=cache, **kw)


def _setup():
    cache = PlanCache(capacity=4)
    plan, _ = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    b = np.random.default_rng(3).standard_normal(plan.n)
    return cache, plan, b


def test_clean_ilu_apply_is_depth_zero_and_bitwise_native():
    cache, plan, b = _setup()
    chain = _chain(cache)
    res = chain.execute(plan, "ilu_apply", b)
    assert (res.depth, res.rung, res.recompiled) == (0, "dbsr", False)
    assert not res.degraded
    assert np.array_equal(res.solution, plan.apply(b))


def test_reference_path_is_the_projected_csr_rung():
    from repro.ilu.ilu0_csr import ilu0_apply_csr

    cache, plan, b = _setup()
    chain = _chain(cache)
    ref = chain.execute_reference(plan, "ilu_apply", b)
    factors = plan.factors.to_csr_factors()
    expect = plan.restrict(ilu0_apply_csr(factors, plan.extend(b)))
    assert np.array_equal(ref, expect)


def test_kernel_crash_falls_back_to_csr_rung_bitwise():
    cache, plan, b = _setup()
    chain = _chain(cache)
    ref = chain.execute_reference(plan, "ilu_apply", b)
    with inject(FaultPlan((FaultSpec("kernel_exception",
                                     strategies=("dbsr",),
                                     ops=("ilu_apply",)),))):
        res = chain.execute(plan, "ilu_apply", b)
    assert (res.depth, res.rung) == (1, "csr")
    assert res.attempts[0][0] == "dbsr"
    assert np.array_equal(res.solution, ref)


def test_ilu_ladder_is_dbsr_then_csr_no_sell():
    cache, plan, b = _setup()
    chain = _chain(cache)
    assert chain._ladder_for(plan) == ("dbsr", "csr")


def test_corrupted_factors_heal_by_recompile_bitwise():
    cache, plan, b = _setup()
    chain = _chain(cache)
    ref = plan.apply(b)
    plan.factors.matrix.values[0, 0] = np.nan
    res = chain.execute(plan, "ilu_apply", b)
    assert res.recompiled
    assert np.array_equal(res.solution, ref)
    assert cache.stats()["invalidations"] == 1
    healed, hit = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    assert hit
    assert np.array_equal(healed.apply(b), ref)


def test_heal_recompiles_from_the_plans_value_snapshot():
    """Healing must re-factorize the *served* coefficients, not the
    canonical assembly — otherwise a refreshed structure would heal
    back to stale numbers."""
    cache, plan, b = _setup()
    rng = np.random.default_rng(5)
    v2 = plan.values_src * (1.0 + 0.05 * rng.uniform(
        -1.0, 1.0, plan.values_src.shape))
    fresh, repacked = cache.refresh_values(plan.fingerprint, v2)
    assert repacked
    ref = fresh.apply(b)
    chain = _chain(cache)
    fresh.factors.matrix.values[0, 0] = np.inf
    res = chain.execute(fresh, "ilu_apply", b)
    assert res.recompiled
    assert np.array_equal(res.solution, ref)
    healed = cache.peek(fresh.fingerprint)
    assert healed.value_digest == fresh.value_digest


def test_cacheless_heal_compiles_inline():
    _, plan, b = _setup()
    chain = _chain(cache=None)
    ref = plan.apply(b)
    plan.factors.matrix.values[0, 0] = np.nan
    res = chain.execute(plan, "ilu_apply", b)
    assert res.recompiled
    assert np.array_equal(res.solution, ref)


def test_multi_rhs_block_degrades_bitwise():
    cache, plan, _ = _setup()
    chain = _chain(cache)
    B = np.random.default_rng(7).standard_normal((plan.n, 4))
    ref = chain.execute_reference(plan, "ilu_apply", B)
    with inject(FaultPlan((FaultSpec("kernel_exception",
                                     strategies=("dbsr",)),))):
        res = chain.execute(plan, "ilu_apply", B)
    assert res.rung == "csr"
    assert np.array_equal(res.solution, ref)
    assert np.array_equal(ref, plan.apply(B))
