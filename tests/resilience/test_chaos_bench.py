"""End-to-end chaos scenarios and the zero-overhead guarantee."""

import json

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.kernels.sptrsv_dbsr import sptrsv_dbsr_lower_counted
from repro.resilience.chaos import (
    collect_bench_chaos,
    default_scenarios,
    run_scenario,
)
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serve.plan import PlanConfig, compile_plan
from repro.simd.engine import VectorEngine

pytestmark = pytest.mark.chaos


def test_quick_scenarios_all_recover():
    report = collect_bench_chaos(nx=8, quick=True)
    assert report["recovery_rate"] == 1.0
    assert report["bit_identical_rate"] == 1.0
    assert report["n_scenarios"] == len(default_scenarios(quick=True))
    json.dumps(report)  # must be emittable as BENCH_chaos.json


def test_breaker_record_in_report():
    report = collect_bench_chaos(nx=8, quick=True)
    br = report["circuit_breaker"]
    assert br["breaker_opened"]
    assert br["fails_fast_when_open"]
    assert br["exhausted_failures"] == br["threshold"]


def test_single_scenario_record_schema():
    scenario = default_scenarios(quick=True)[0]
    rec = run_scenario(scenario, nx=8, stencil="27pt", bsize=4)
    assert set(rec) >= {"scenario", "fault_kinds", "op", "recovered",
                        "bit_identical", "fallback_depth", "recompiled",
                        "added_seconds"}
    assert rec["recovered"] and rec["bit_identical"]


def test_armed_injector_does_not_change_op_counts():
    """An injector whose specs never match must leave the counted
    kernel's instruction mix bit-for-bit identical: the hook sites are
    a single None-check plus a filtered dispatch, never extra vector
    ops."""
    plan = compile_plan(StructuredGrid((6, 6, 6)), "27pt",
                        PlanConfig(bsize=4))
    b = np.random.default_rng(11).standard_normal(plan.lower.n_rows)

    def counted():
        engine = VectorEngine(bsize=plan.lower.bsize)
        x = sptrsv_dbsr_lower_counted(plan.lower, b, engine,
                                      diag=plan.diag)
        return x, engine.counter

    x_clean, c_clean = counted()
    # Armed, but filtered to an op this run never executes.
    fault = FaultPlan((FaultSpec("kernel_exception", strategies=None,
                                 ops=("never-this-op",)),))
    with inject(fault) as inj:
        x_armed, c_armed = counted()
    assert inj.injected == 0
    assert np.array_equal(x_clean, x_armed)
    assert c_clean == c_armed


def test_clean_plan_execute_unchanged_under_filtered_injector():
    plan = compile_plan(StructuredGrid((6, 6, 6)), "27pt",
                        PlanConfig(bsize=4))
    b = np.random.default_rng(12).standard_normal(plan.n)
    ref = plan.execute("lower", b)
    fault = FaultPlan((FaultSpec("kernel_exception", strategies=None,
                                 ops=("upper",)),))
    with inject(fault):
        assert np.array_equal(plan.execute("lower", b), ref)
