"""Structural validators and integrity digests."""

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.resilience.errors import PlanValidationError
from repro.resilience.guardrails import (
    check_integrity,
    seal_plan,
    validate_diag,
    validate_permutation,
    validate_plan,
)
from repro.serve.plan import PlanConfig, compile_plan

pytestmark = pytest.mark.chaos


def _fresh_plan(strategy="dbsr"):
    return compile_plan(StructuredGrid((6, 6, 6)), "27pt",
                        PlanConfig(bsize=4, strategy=strategy))


def test_clean_plan_validates_at_both_levels():
    plan = _fresh_plan()
    validate_plan(plan)
    validate_plan(plan, level="integrity")


def test_sell_plan_validates():
    validate_plan(_fresh_plan(strategy="sell"), level="integrity")


def test_compile_seals_integrity_digests():
    plan = _fresh_plan()
    assert plan.integrity
    assert all(len(d) == 64 for d in plan.integrity.values())


def test_permutation_out_of_range():
    with pytest.raises(PlanValidationError, match="out of range"):
        validate_permutation(np.array([0, 1, 99]), 3)


def test_permutation_duplicate_image():
    with pytest.raises(PlanValidationError, match="not a bijection"):
        validate_permutation(np.array([0, 1, 1]), 8)


def test_diag_zero_rejected():
    with pytest.raises(PlanValidationError, match="zero diagonal"):
        validate_diag(np.array([1.0, 0.0, 2.0]))


def test_nan_value_caught_structurally():
    plan = _fresh_plan()
    plan.lower.values.reshape(-1)[3] = np.nan
    with pytest.raises(PlanValidationError, match="non-finite"):
        validate_plan(plan)


def test_bad_block_index_caught_structurally():
    plan = _fresh_plan()
    plan.lower.blk_ind[0] = plan.lower.n_cols
    with pytest.raises(PlanValidationError, match="out of range"):
        validate_plan(plan)


def test_non_monotone_blk_ptr_caught():
    plan = _fresh_plan()
    plan.dbsr.blk_ptr[1] = plan.dbsr.blk_ptr[2] + 1
    with pytest.raises(PlanValidationError, match="monotone"):
        validate_plan(plan)


def test_triangularity_violation_caught():
    plan = _fresh_plan()
    # Move a lower tile onto/above the diagonal of its block row.
    brow = np.searchsorted(plan.lower.blk_ptr, 1, side="right") - 1
    plan.lower.blk_ind[0] = min(brow + 1,
                                plan.lower.n_cols // plan.lower.bsize - 1)
    plan.lower.blk_offset[0] = 0
    with pytest.raises(PlanValidationError):
        validate_plan(plan)


def test_integrity_catches_silent_bitflip():
    """A finite-value bit-flip passes structural checks but not digests."""
    plan = _fresh_plan()
    flat = plan.lower.values.reshape(-1)
    bits = flat[5:6].view(np.uint64)
    bits ^= np.uint64(1 << 52)
    validate_plan(plan)  # structurally silent
    with pytest.raises(PlanValidationError, match="digest mismatch"):
        validate_plan(plan, level="integrity")


def test_integrity_scope_filter():
    """A corrupt artifact outside the checked scope is not reported."""
    plan = _fresh_plan()
    plan.lower.values.reshape(-1)[0] += 1.0
    check_integrity(plan, artifacts=("matrix", "diag"))  # passes
    with pytest.raises(PlanValidationError, match="lower"):
        check_integrity(plan, artifacts=("lower",))


def test_unsealed_plan_skips_integrity():
    plan = _fresh_plan()
    plan.integrity = None
    plan.lower.values.reshape(-1)[0] += 1.0
    check_integrity(plan)  # nothing sealed -> no-op


def test_reseal_after_legitimate_change():
    plan = _fresh_plan()
    plan.diag[0] *= 1.0 + 1e-12
    with pytest.raises(PlanValidationError):
        check_integrity(plan)
    seal_plan(plan)
    check_integrity(plan)


def test_cache_verify_evicts_poisoned_plans():
    from repro.serve.cache import PlanCache

    cache = PlanCache(capacity=4)
    grid = StructuredGrid((6, 6, 6))
    config = PlanConfig(bsize=4)
    plan, _ = cache.get_or_compile(grid, "27pt", config)
    assert cache.verify() == []
    plan.diag[0] = np.nan
    bad = cache.verify()
    assert bad == [plan.fingerprint]
    assert plan.fingerprint not in cache
    assert cache.stats()["invalidations"] == 1
    # Recompile-through heals the entry.
    fresh, hit = cache.get_or_compile(grid, "27pt", config)
    assert not hit
    assert np.all(np.isfinite(fresh.diag))
