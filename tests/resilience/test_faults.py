"""Deterministic fault injection: specs, budgets, hook delivery."""

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.resilience import hooks
from repro.resilience.errors import FaultInjected, ResilienceError
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    inject,
)
from repro.serve.plan import PlanConfig, compile_plan

pytestmark = pytest.mark.chaos

_PLAN = None


def _plan():
    global _PLAN
    if _PLAN is None:
        _PLAN = compile_plan(StructuredGrid((6, 6, 6)), "27pt",
                             PlanConfig(bsize=4))
    return _PLAN


def _fresh_plan():
    return compile_plan(StructuredGrid((6, 6, 6)), "27pt",
                        PlanConfig(bsize=4))


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("cosmic_ray")


def test_unknown_value_target_rejected():
    with pytest.raises(ValueError, match="unknown value target"):
        FaultSpec("nan_value", target="values_of_doom")


def test_corruption_is_deterministic():
    """Same plan + same seed => corruption lands at the same index."""
    spec = FaultSpec("nan_value", target="lower")
    records = []
    for _ in range(2):
        plan = _fresh_plan()
        inj = FaultInjector(FaultPlan((spec,), seed=7))
        recs = inj.corrupt_plan(plan)
        assert len(recs) == 1
        records.append((recs[0].artifact, recs[0].index))
        assert np.isnan(plan.lower.values.reshape(-1)[recs[0].index])
    assert records[0] == records[1]


def test_max_fires_budget_is_consumed():
    spec = FaultSpec("nan_value", target="lower", max_fires=1)
    inj = FaultInjector(FaultPlan((spec,)))
    assert len(inj.corrupt_plan(_fresh_plan())) == 1
    assert len(inj.corrupt_plan(_fresh_plan())) == 0
    assert inj.injected == 1


def test_persistent_spec_never_disarms():
    spec = FaultSpec("nan_value", target="lower", max_fires=None)
    inj = FaultInjector(FaultPlan((spec,)))
    for _ in range(3):
        assert len(inj.corrupt_plan(_fresh_plan())) == 1


def test_scramble_breaks_bijection():
    plan = _fresh_plan()
    inj = FaultInjector(FaultPlan(
        (FaultSpec("scramble_permutation"),)))
    inj.corrupt_plan(plan)
    perm = plan.ordering.old_to_new
    assert len(np.unique(perm)) == len(perm) - 1


def test_bitflip_changes_bytes_but_stays_structural():
    plan = _fresh_plan()
    before = plan.lower.values.copy()
    inj = FaultInjector(FaultPlan(
        (FaultSpec("bitflip_value", target="lower"),)))
    recs = inj.corrupt_plan(plan)
    assert len(recs) == 1
    assert not np.array_equal(plan.lower.values, before)
    # Exponent-field flip: the value changed but is still finite, so
    # only the integrity digest (not np.isfinite) can see it.
    assert np.all(np.isfinite(plan.lower.values))


def test_inject_context_manager_uninstalls():
    fault = FaultPlan((FaultSpec("kernel_exception",
                                 strategies=None),))
    with inject(fault) as inj:
        assert hooks.active() is inj
    assert hooks.active() is None


def test_inject_uninstalls_even_when_fault_raises():
    fault = FaultPlan((FaultSpec("kernel_exception",
                                 strategies=None),))
    with pytest.raises(FaultInjected):
        with inject(fault):
            _plan().execute("lower", np.ones(_plan().n))
    assert hooks.active() is None


def test_kernel_exception_respects_op_filter():
    fault = FaultPlan((FaultSpec("kernel_exception", strategies=None,
                                 ops=("upper",)),))
    b = np.ones(_plan().n)
    with inject(fault):
        _plan().execute("lower", b)  # filtered out: does not raise
        with pytest.raises(FaultInjected):
            _plan().execute("upper", b)


def test_worker_exception_fires_in_pooled_task():
    from repro.ordering.vbmc import ColorSchedule
    from repro.parallel.executor import ColorParallelExecutor

    schedule = ColorSchedule(bsize=1, points_per_block=1,
                             color_group_ptr=np.array([0, 4]))
    with ColorParallelExecutor(schedule, n_workers=2) as ex:
        fault = FaultPlan((FaultSpec("worker_exception"),))
        with inject(fault):
            with pytest.raises(FaultInjected):
                ex.run_forward(lambda g: None)
        ex.run_forward(lambda g: None)  # disarmed: clean again


def test_kernel_delay_sleeps_and_continues():
    fault = FaultPlan((FaultSpec("kernel_delay", strategies=None,
                                 delay_seconds=0.0),))
    b = np.ones(_plan().n)
    with inject(fault) as inj:
        x = _plan().execute("lower", b)
    assert np.all(np.isfinite(x))
    assert inj.injected == 1
    assert inj.records[0].kind == "kernel_delay"


def test_fault_injected_is_not_a_resilience_error():
    exc = FaultInjected("plan.execute", "kernel_exception")
    assert not isinstance(exc, ResilienceError)


def test_stats_reports_records():
    inj = FaultInjector(FaultPlan(
        (FaultSpec("nan_value", target="diag"),), name="scenario-x"))
    inj.corrupt_plan(_fresh_plan())
    s = inj.stats()
    assert s["plan"] == "scenario-x"
    assert s["injected"] == 1
    assert s["records"][0]["artifact"] == "diag"
