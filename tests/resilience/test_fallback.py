"""The self-healing fallback chain and the circuit breaker."""

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.resilience.errors import (
    CircuitOpen,
    FallbackExhausted,
    ResilienceError,
)
from repro.resilience.fallback import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FallbackChain,
)
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serve.cache import PlanCache
from repro.serve.plan import PlanConfig, compile_plan

pytestmark = pytest.mark.chaos

GRID = StructuredGrid((6, 6, 6))
CONFIG = PlanConfig(bsize=4)


def _chain(cache=None, **kw):
    kw.setdefault("backoff_base", 0.0)
    kw.setdefault("breaker", CircuitBreaker(threshold=3))
    return FallbackChain(cache=cache, **kw)


def _setup():
    cache = PlanCache(capacity=4)
    plan, _ = cache.get_or_compile(GRID, "27pt", CONFIG)
    b = np.random.default_rng(3).standard_normal(plan.n)
    return cache, plan, b


# Circuit breaker ----------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def test_breaker_opens_after_threshold():
    clock = FakeClock()
    br = CircuitBreaker(threshold=3, cooldown_seconds=10.0, clock=clock)
    for _ in range(2):
        assert not br.record_failure("fp")
    assert br.state("fp") == CLOSED
    assert br.record_failure("fp")
    assert br.state("fp") == OPEN
    with pytest.raises(CircuitOpen) as ei:
        br.allow("fp")
    assert ei.value.retry_after == pytest.approx(10.0)
    assert br.rejections == 1


def test_breaker_half_open_probe_then_close():
    clock = FakeClock()
    br = CircuitBreaker(threshold=1, cooldown_seconds=5.0, clock=clock)
    br.record_failure("fp")
    clock.t = 6.0
    br.allow("fp")  # cooldown elapsed -> half-open probe allowed
    assert br.state("fp") == HALF_OPEN
    br.record_success("fp")
    assert br.state("fp") == CLOSED


def test_breaker_half_open_failure_reopens():
    clock = FakeClock()
    br = CircuitBreaker(threshold=2, cooldown_seconds=5.0, clock=clock)
    br.record_failure("fp")
    br.record_failure("fp")
    clock.t = 6.0
    br.allow("fp")
    assert br.state("fp") == HALF_OPEN
    # A single half-open failure reopens, below the closed threshold.
    assert br.record_failure("fp")
    assert br.state("fp") == OPEN
    assert br.open_events == 2


def test_breaker_half_open_admits_single_probe():
    clock = FakeClock()
    br = CircuitBreaker(threshold=1, cooldown_seconds=5.0, clock=clock)
    br.record_failure("fp")
    clock.t = 6.0
    br.allow("fp")  # claims the half-open probe slot
    with pytest.raises(CircuitOpen):
        br.allow("fp")  # concurrent solve rejected while probing
    assert br.rejections == 1
    br.record_success("fp")
    br.allow("fp")
    assert br.state("fp") == CLOSED


def test_breaker_hung_probe_reclaims_after_cooldown():
    clock = FakeClock()
    br = CircuitBreaker(threshold=1, cooldown_seconds=5.0, clock=clock)
    br.record_failure("fp")
    clock.t = 6.0
    br.allow("fp")  # probe claimed but never resolved (hung worker)
    clock.t = 12.0
    br.allow("fp")  # a fresh probe may re-claim the stale slot
    assert br.state("fp") == HALF_OPEN


def test_breaker_is_per_fingerprint():
    br = CircuitBreaker(threshold=1)
    br.record_failure("sick")
    assert br.state("sick") == OPEN
    br.allow("healthy")
    assert br.state("healthy") == CLOSED


# Chain recovery -----------------------------------------------------------

def test_clean_solve_is_depth_zero_and_bitwise_native():
    cache, plan, b = _setup()
    chain = _chain(cache)
    res = chain.execute(plan, "lower", b)
    assert (res.depth, res.rung, res.recompiled) == (0, "dbsr", False)
    assert not res.degraded
    assert np.array_equal(res.solution, plan.execute("lower", b))
    assert chain.stats()["depth_histogram"]["0"] == 1
    assert chain.recovered == 0


def test_corruption_heals_by_recompile_bitwise():
    cache, plan, b = _setup()
    chain = _chain(cache)
    ref = plan.execute("lower", b)
    with inject(FaultPlan((FaultSpec("nan_value", target="lower"),))) \
            as inj:
        inj.corrupt_plan(plan)
        res = chain.execute(plan, "lower", b)
    assert (res.depth, res.recompiled) == (0, True)
    assert np.array_equal(res.solution, ref)
    assert cache.stats()["invalidations"] == 1
    assert chain.recovered == 1
    assert chain.recompiles == 1
    # The healed plan now serves later requests cleanly from cache.
    healed, hit = cache.get_or_compile(GRID, "27pt", CONFIG)
    assert hit
    clean = chain.execute(healed, "lower", b)
    assert not clean.degraded


def test_kernel_crash_falls_back_to_sell():
    cache, plan, b = _setup()
    chain = _chain(cache)
    with inject(FaultPlan((FaultSpec("kernel_exception",
                                     strategies=("dbsr",)),))):
        res = chain.execute(plan, "lower", b)
    assert (res.depth, res.rung) == (1, "sell")
    assert res.attempts[0][0] == "dbsr"
    assert np.all(np.isfinite(res.solution))


def test_double_crash_falls_back_to_csr_bitwise():
    cache, plan, b = _setup()
    chain = _chain(cache)
    ref = chain.execute_reference(plan, "lower", b)
    with inject(FaultPlan((FaultSpec(
            "kernel_exception", strategies=("dbsr", "sell"),
            max_fires=2),))):
        res = chain.execute(plan, "lower", b)
    assert (res.depth, res.rung) == (2, "csr")
    assert np.array_equal(res.solution, ref)


def test_residual_guard_catches_finite_but_wrong_values():
    """With digests off, a bit-flipped value survives validation and
    the kernel — the post-solve residual guard must catch it."""
    cache, plan, b = _setup()
    chain = _chain(cache, integrity=False)
    ref = plan.execute("lower", b)
    flat = plan.lower.values.reshape(-1)
    nz = np.flatnonzero(flat != 0)
    bits = flat[nz[0]:nz[0] + 1].view(np.uint64)
    bits ^= np.uint64(1 << 53)  # exponent-field flip: finite, wrong
    assert np.all(np.isfinite(flat))
    res = chain.execute(plan, "lower", b)
    # Execution-stage failures descend the ladder (no recompile): the
    # sell rung reads the uncorrupted plan.matrix and recovers.
    assert (res.depth, res.rung, res.recompiled) == (1, "sell", False)
    assert res.attempts[0][0] == "dbsr"
    assert "residual guard" in res.attempts[0][1]
    assert np.allclose(res.solution, ref)


def test_exhausted_raises_and_feeds_breaker():
    cache, plan, b = _setup()
    chain = _chain(cache, breaker=CircuitBreaker(threshold=2))
    fault = FaultPlan((FaultSpec("scramble_permutation",
                                 max_fires=None, at_compile=True),))
    with inject(fault) as inj:
        inj.corrupt_plan(plan)
        with pytest.raises(FallbackExhausted) as ei:
            chain.execute(plan, "lower", b)
        assert [r for r, _ in ei.value.attempts[:1]] == ["dbsr"]
        with pytest.raises(FallbackExhausted):
            chain.execute(plan, "lower", b)
        with pytest.raises(CircuitOpen):
            chain.execute(plan, "lower", b)
    assert chain.exhausted == 2
    assert chain.breaker.open_events == 1


def test_backoff_is_exponential_and_capped():
    sleeps = []
    cache, plan, b = _setup()
    chain = FallbackChain(cache=cache, backoff_base=0.1,
                          backoff_factor=2.0, backoff_max=0.15,
                          breaker=CircuitBreaker(threshold=99),
                          sleep=sleeps.append)
    with inject(FaultPlan((FaultSpec(
            "kernel_exception", strategies=("dbsr", "sell"),
            max_fires=2),))):
        chain.execute(plan, "lower", b)
    assert sleeps == [pytest.approx(0.1), pytest.approx(0.15)]


def test_sell_strategy_plan_starts_ladder_at_sell():
    cache = PlanCache(capacity=4)
    plan, _ = cache.get_or_compile(GRID, "27pt",
                                   PlanConfig(bsize=4, strategy="sell"))
    b = np.random.default_rng(3).standard_normal(plan.n)
    chain = _chain(cache)
    with inject(FaultPlan((FaultSpec("kernel_exception",
                                     strategies=("sell",)),))):
        res = chain.execute(plan, "lower", b)
    assert (res.depth, res.rung) == (1, "csr")


def test_sell_rung_integrity_covers_sell_arrays():
    # A one-ulp perturbation of a sealed SELL value passes every
    # structural check and sits far below the residual guard's
    # tolerance — only the sell_lower/sell_upper digests catch it.
    cache = PlanCache(capacity=4)
    plan, _ = cache.get_or_compile(GRID, "27pt",
                                   PlanConfig(bsize=4, strategy="sell"))
    b = np.random.default_rng(3).standard_normal(plan.n)
    ref = plan.execute("lower", b)
    vals = plan.sell_lower.vals
    idx = np.unravel_index(np.flatnonzero(vals)[0], vals.shape)
    vals[idx] = np.nextafter(vals[idx], np.inf)
    chain = _chain(cache)
    res = chain.execute(plan, "lower", b)
    assert res.recompiled
    assert chain.faults_detected >= 1
    assert np.array_equal(res.solution, ref)


def test_heal_budget_is_atomic_under_concurrency():
    import threading

    cache, plan, _ = _setup()
    chain = _chain(cache, max_recompiles=1)
    start = threading.Barrier(4)
    results = []

    def heal():
        start.wait()
        results.append(chain._heal(plan))

    threads = [threading.Thread(target=heal) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Exactly one thread may win the single budget slot.
    assert sum(r is not None for r in results) == 1
    assert chain.recompiles == 1
    assert FallbackChain.recompiles_used_for(plan) == 1


@pytest.mark.parametrize("op", ["lower", "upper", "spmv", "symgs"])
def test_all_ops_survive_full_descent(op):
    cache, plan, b = _setup()
    chain = _chain(cache)
    ref = chain.execute_reference(plan, op, b)
    with inject(FaultPlan((FaultSpec(
            "kernel_exception", strategies=("dbsr", "sell"),
            max_fires=2),))):
        res = chain.execute(plan, op, b)
    assert res.rung == "csr"
    assert np.array_equal(res.solution, ref)


def test_multi_rhs_block_recovery():
    cache, plan, _ = _setup()
    chain = _chain(cache)
    B = np.random.default_rng(5).standard_normal((plan.n, 3))
    ref = chain.execute_reference(plan, "lower", B)
    with inject(FaultPlan((FaultSpec(
            "kernel_exception", strategies=("dbsr", "sell"),
            max_fires=2),))):
        res = chain.execute(plan, "lower", B)
    assert res.solution.shape == (plan.n, 3)
    assert np.array_equal(res.solution, ref)


def test_stats_schema():
    cache, plan, b = _setup()
    chain = _chain(cache)
    chain.execute(plan, "lower", b)
    s = chain.stats()
    assert set(s) >= {"solves", "faults_detected", "recovered",
                      "recompiles", "exhausted", "depth_histogram",
                      "rung_failures", "seconds_by_depth", "breaker"}
    import json

    json.dumps(s)


def test_chain_errors_are_resilience_errors():
    assert issubclass(FallbackExhausted, ResilienceError)
    assert issubclass(CircuitOpen, ResilienceError)


# Non-recoverable failures -------------------------------------------------
#
# The two ladder-boundary ``except Exception`` handlers used to swallow
# *everything*, so resource exhaustion and violated internal invariants
# were silently "recovered" by descending rungs. They must re-raise the
# typed NON_RECOVERABLE_ERRORS set instead.

@pytest.mark.parametrize("exc_type", [MemoryError, AssertionError])
def test_rung_boundary_reraises_non_recoverable(exc_type):
    cache, plan, b = _setup()
    chain = _chain(cache)

    def boom(plan, rung, op, B):
        raise exc_type("cache invariant violated")

    chain._run_rung = boom
    with pytest.raises(exc_type):
        chain.execute(plan, "lower", b)
    # Nothing was mis-counted as a recovered solve.
    assert chain.stats()["solves"] == 0


def test_rung_boundary_still_degrades_on_ordinary_errors():
    cache, plan, b = _setup()
    chain = _chain(cache)
    ref = chain.execute_reference(plan, "lower", b)
    real_run = chain._run_rung

    def flaky(plan, rung, op, B):
        if rung == "dbsr":
            raise RuntimeError("ordinary kernel crash")
        return real_run(plan, rung, op, B)

    chain._run_rung = flaky
    res = chain.execute(plan, "lower", b)
    assert res.rung == "sell"
    assert np.allclose(res.solution, ref)


@pytest.mark.parametrize("exc_type", [MemoryError, AssertionError])
def test_heal_reraises_non_recoverable_compile_failure(exc_type):
    cache, plan, b = _setup()
    chain = _chain(cache)

    def poisoned_compile(*a, **kw):
        raise exc_type("compile blew the heap")

    cache.get_or_compile = poisoned_compile
    with pytest.raises(exc_type):
        chain._heal(plan)


def test_heal_returns_none_on_ordinary_compile_failure():
    cache, plan, b = _setup()
    chain = _chain(cache)

    def broken_compile(*a, **kw):
        raise RuntimeError("compile itself is poisoned")

    cache.get_or_compile = broken_compile
    assert chain._heal(plan) is None
