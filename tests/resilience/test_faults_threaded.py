"""FaultInjector fire-counting must be atomic across threads.

Regression for the unsynchronised ``_take`` race: the gateway runs
shard executes on worker threads, so a ``max_fires=N`` spec hammered
from many threads used to fire anywhere between N and N+threads-1
times (check-then-increment without a lock). It must fire exactly N.
"""

import threading

import pytest

from repro.resilience.errors import FaultInjected
from repro.resilience.faults import FaultInjector, FaultPlan, FaultSpec

pytestmark = [pytest.mark.fast, pytest.mark.chaos]


def hammer(inj, site, n_threads, per_thread, **ctx):
    """Fire ``site`` from ``n_threads`` threads simultaneously; return
    the number of FaultInjected raised across all of them."""
    barrier = threading.Barrier(n_threads)
    hits = []
    lock = threading.Lock()

    def worker():
        barrier.wait()
        mine = 0
        for _ in range(per_thread):
            try:
                inj.fire(site, **ctx)
            except FaultInjected:
                mine += 1
        with lock:
            hits.append(mine)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return sum(hits)


def test_count_n_shard_fault_fires_exactly_n_across_threads():
    plan = FaultPlan(name="threaded-crash", seed=0, specs=(
        FaultSpec(kind="shard_crash", max_fires=7),
    ))
    inj = FaultInjector(plan)
    # 8 threads x 5 attempts = 40 chances, only 7 armed firings.
    raised = hammer(inj, "gateway.shard", n_threads=8, per_thread=5,
                    shard=None, op="lower")
    assert raised == 7
    assert inj.fires(0) == 7
    assert inj.injected == 7
    assert len(inj.records) == 7


def test_count_n_worker_fault_fires_exactly_n_across_threads():
    plan = FaultPlan(name="threaded-worker", seed=1, specs=(
        FaultSpec(kind="worker_exception", max_fires=3),
    ))
    inj = FaultInjector(plan)
    raised = hammer(inj, "parallel.worker", n_threads=6, per_thread=4,
                    group=0)
    assert raised == 3
    assert inj.fires(0) == 3


def test_persistent_fault_fires_every_time_across_threads():
    plan = FaultPlan(name="threaded-persistent", seed=2, specs=(
        FaultSpec(kind="shard_crash", max_fires=None),
    ))
    inj = FaultInjector(plan)
    raised = hammer(inj, "gateway.shard", n_threads=4, per_thread=10,
                    shard=None, op="lower")
    assert raised == 40
    assert inj.fires(0) == 40


def test_independent_specs_count_independently_under_contention():
    plan = FaultPlan(name="threaded-mixed", seed=3, specs=(
        FaultSpec(kind="shard_crash", max_fires=2),
        FaultSpec(kind="spawn_fail", max_fires=4),
    ))
    inj = FaultInjector(plan)
    barrier = threading.Barrier(8)
    totals = {"shard": 0, "spawn": 0}
    lock = threading.Lock()

    def worker(kind):
        barrier.wait()
        mine = 0
        for _ in range(6):
            try:
                if kind == "shard":
                    inj.fire("gateway.shard", shard=None, op="lower")
                else:
                    inj.fire("pool.spawn", shard_index=0)
            except FaultInjected:
                mine += 1
        with lock:
            totals[kind] += mine

    threads = [threading.Thread(target=worker,
                                args=("shard" if i % 2 else "spawn",))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert totals["shard"] == 2 and inj.fires(0) == 2
    assert totals["spawn"] == 4 and inj.fires(1) == 4
    assert inj.injected == 6
