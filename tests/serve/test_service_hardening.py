"""Service hardening: deadlines, drain timeouts, resilient execution."""

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.resilience.errors import DeadlineExceeded, DrainTimeout
from repro.resilience.fallback import CircuitBreaker, FallbackChain
from repro.resilience.faults import FaultPlan, FaultSpec, inject
from repro.serve.cache import PlanCache
from repro.serve.plan import PlanConfig
from repro.serve.service import RequestError, SolveService

pytestmark = pytest.mark.chaos

GRID = StructuredGrid((6, 6, 6))
CONFIG = PlanConfig(bsize=4)


def _rhs(seed=0):
    return np.random.default_rng(seed).standard_normal(GRID.n_points)


# Drain timeout ------------------------------------------------------------

def test_drain_timeout_requeues_and_names_tickets():
    with SolveService(config=CONFIG) as svc:
        tickets = [svc.submit(GRID, "27pt", _rhs(i)) for i in range(3)]
        with pytest.raises(DrainTimeout) as ei:
            svc.drain(timeout=0.0)
        assert sorted(ei.value.ticket_ids) == \
            [t.request_id for t in tickets]
        # Nothing executed, everything requeued.
        assert svc.n_pending == 3
        assert all(not t.done for t in tickets)
        # A later unbounded drain picks the work back up.
        assert svc.drain() == 3
        for t in tickets:
            assert np.all(np.isfinite(t.result()))


def test_drain_timeout_requeue_keeps_priority():
    with SolveService(config=CONFIG) as svc:
        old = svc.submit(GRID, "27pt", _rhs(0))
        with pytest.raises(DrainTimeout):
            svc.drain(timeout=0.0)
        svc.submit(GRID, "27pt", _rhs(1))
        # The re-queued request sits ahead of the newer submission.
        assert svc._pending[0].ticket.request_id == old.request_id
        assert svc.drain() == 2


def test_drain_timeout_mid_compile_requeues_staged_groups():
    # When the budget expires between groups, batches already staged
    # from earlier groups have not executed either — their tickets
    # must be named and re-queued, not silently dropped.
    import time

    with SolveService(config=CONFIG) as svc:
        t_lower = svc.submit(GRID, "27pt", _rhs(0), op="lower")
        t_upper = svc.submit(GRID, "27pt", _rhs(1), op="upper")
        orig = svc._plan_for

        def slow_plan_for(entry):
            time.sleep(0.05)
            return orig(entry)

        svc._plan_for = slow_plan_for
        with pytest.raises(DrainTimeout) as ei:
            svc.drain(timeout=0.01)
        assert sorted(ei.value.ticket_ids) == \
            sorted([t_lower.request_id, t_upper.request_id])
        assert svc.n_pending == 2
        assert not t_lower.done and not t_upper.done
        svc._plan_for = orig
        assert svc.drain() == 2
        for t in (t_lower, t_upper):
            assert np.all(np.isfinite(t.result()))


# Per-request deadlines ----------------------------------------------------

def test_submit_rejects_nonpositive_deadline():
    with SolveService(config=CONFIG) as svc:
        with pytest.raises(RequestError, match="deadline"):
            svc.submit(GRID, "27pt", _rhs(), deadline=0.0)


def test_expired_deadline_fails_only_that_request():
    with SolveService(config=CONFIG) as svc:
        stale = svc.submit(GRID, "27pt", _rhs(0), deadline=1e-9)
        fresh = svc.submit(GRID, "27pt", _rhs(1))
        import time

        time.sleep(0.01)
        assert svc.drain() == 1
        with pytest.raises(DeadlineExceeded) as ei:
            stale.result()
        assert ei.value.request_id == stale.request_id
        assert np.all(np.isfinite(fresh.result()))
        assert svc.failed == 1 and svc.completed == 1


def test_generous_deadline_is_met():
    with SolveService(config=CONFIG) as svc:
        t = svc.submit(GRID, "27pt", _rhs(), deadline=60.0)
        svc.drain()
        assert np.all(np.isfinite(t.result()))


# Ticket error annotation --------------------------------------------------

def test_ticket_errors_name_request_op_and_fingerprint():
    with SolveService(config=CONFIG) as svc:
        bad = _rhs()
        bad[0] = np.nan
        t = svc.submit(GRID, "27pt", bad)
        svc.drain()
        with pytest.raises(RequestError) as ei:
            t.result()
        notes = " ".join(getattr(ei.value, "__notes__", []))
        assert f"request {t.request_id}" in notes
        assert "op='lower'" in notes
        assert t.fingerprint[:12] in notes


# Resilient execution ------------------------------------------------------

def test_resilient_service_heals_corrupted_plan():
    cache = PlanCache(capacity=4)
    chain = FallbackChain(cache=cache, backoff_base=0.0,
                          breaker=CircuitBreaker(threshold=3))
    with SolveService(cache=cache, config=CONFIG,
                      resilience=chain) as svc:
        plan, _ = cache.get_or_compile(GRID, "27pt", CONFIG)
        t = svc.submit(GRID, "27pt", _rhs())
        with inject(FaultPlan(
                (FaultSpec("nan_value", target="lower"),))) as inj:
            inj.corrupt_plan(plan)
            assert svc.drain() == 1
        assert np.all(np.isfinite(t.result()))
        stats = svc.stats()
        assert stats["resilience"]["recovered"] == 1
        assert stats["resilience"]["recompiles"] == 1
        assert stats["cache"]["invalidations"] == 1


def test_resilient_service_matches_native_results():
    cache = PlanCache(capacity=4)
    chain = FallbackChain(cache=cache, backoff_base=0.0,
                          breaker=CircuitBreaker(threshold=3))
    rhs = _rhs(9)
    with SolveService(config=CONFIG) as native:
        ref = native.submit(GRID, "27pt", rhs)
        native.drain()
    with SolveService(cache=cache, config=CONFIG,
                      resilience=chain) as svc:
        t = svc.submit(GRID, "27pt", rhs)
        svc.drain()
    assert np.array_equal(t.result(), ref.result())


def test_stats_resilience_is_none_without_chain():
    with SolveService(config=CONFIG) as svc:
        assert svc.stats()["resilience"] is None
