"""SolveService: coalescing, backpressure, isolation, metrics."""

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.kernels.sptrsv_csr import split_triangular
from repro.serve.cache import PlanCache
from repro.serve.plan import PlanConfig
from repro.serve.service import (
    Backpressure,
    RequestError,
    SolveService,
)

CFG = PlanConfig(bsize=4, n_workers=2)
GRID = StructuredGrid((8, 8, 8))
N = GRID.n_points


@pytest.fixture()
def service():
    with SolveService(config=CFG, max_batch=4, max_pending=16) as svc:
        yield svc


def _rhs(rng, count=1):
    return [rng.standard_normal(N) for _ in range(count)]


def test_submit_drain_roundtrip(service, rng):
    b = rng.standard_normal(N)
    ticket = service.submit(GRID, "27pt", b)
    assert not ticket.done
    assert service.n_pending == 1
    assert service.drain() == 1
    assert ticket.done
    x = ticket.result()
    # The answer actually solves (L + D) x = b.
    plan = service.cache.get(ticket.fingerprint)
    L, D, _ = split_triangular(plan.matrix)
    xp = plan.extend(x)
    assert np.abs(L.matvec(xp) + D * xp - plan.extend(b)).max() < 1e-10


def test_coalesced_batch_bitwise_matches_individual(service, rng):
    """Requests sharing a structure are batched — and the batched
    answers are bit-identical to solo drains of the same RHS."""
    rhss = _rhs(rng, 4)
    tickets = [service.submit(GRID, "27pt", b) for b in rhss]
    service.drain()
    assert all(t.metrics["batch_k"] == 4 for t in tickets)
    assert service.batches_executed == 1

    solo = SolveService(config=CFG, max_batch=4)
    for t, b in zip(tickets, rhss):
        ref = solo.submit(GRID, "27pt", b)
        solo.drain()
        assert np.array_equal(t.result(), ref.result())
    solo.close()


def test_batches_respect_max_batch(service, rng):
    tickets = [service.submit(GRID, "27pt", b) for b in _rhs(rng, 6)]
    assert service.drain() == 6
    # 6 requests, max_batch 4 -> one batch of 4 + one of 2.
    assert service.batches_executed == 2
    widths = sorted(t.metrics["batch_k"] for t in tickets)
    assert widths == [2, 2, 4, 4, 4, 4]


def test_mixed_structures_grouped_separately(service, rng):
    small = StructuredGrid((4, 4, 4))
    t1 = service.submit(GRID, "27pt", rng.standard_normal(N))
    t2 = service.submit(small, "27pt", rng.standard_normal(64))
    t3 = service.submit(GRID, "27pt", rng.standard_normal(N))
    assert t1.fingerprint != t2.fingerprint
    service.drain()
    assert t1.metrics["batch_k"] == 2  # t1 and t3 coalesced
    assert t3.metrics["batch_k"] == 2
    assert t2.metrics["batch_k"] == 1
    assert t2.result().shape == (64,)


def test_per_request_cache_hit_metric(service, rng):
    tickets = [service.submit(GRID, "27pt", b) for b in _rhs(rng, 3)]
    service.drain()
    hits = [t.metrics["cache_hit"] for t in tickets]
    assert hits == [False, True, True]
    assert service.cache.hits == 2
    assert service.cache.misses == 1


def test_backpressure(service, rng):
    for b in _rhs(rng, 16):
        service.submit(GRID, "27pt", b)
    with pytest.raises(Backpressure):
        service.submit(GRID, "27pt", rng.standard_normal(N))
    # Draining frees the queue.
    assert service.drain() == 16
    service.submit(GRID, "27pt", rng.standard_normal(N))


def test_submit_rejects_bad_requests(service, rng):
    with pytest.raises(RequestError):
        service.submit(GRID, "27pt", rng.standard_normal(N), op="nope")
    with pytest.raises(RequestError):
        service.submit(GRID, "27pt", rng.standard_normal(N - 1))
    with pytest.raises(RequestError):
        service.submit(GRID, "27pt", rng.standard_normal((N, 2)))
    assert service.submitted == 0


def test_nonfinite_rhs_isolated_at_drain(service, rng):
    good_b = rng.standard_normal(N)
    bad_b = np.full(N, np.nan)
    t_good = service.submit(GRID, "27pt", good_b)
    t_bad = service.submit(GRID, "27pt", bad_b)
    assert service.drain() == 1
    assert t_good.done and t_bad.done
    t_good.result()  # fine
    with pytest.raises(RequestError):
        t_bad.result()
    assert service.failed == 1
    assert service.completed == 1


def test_kernel_failure_falls_back_to_individual(service, rng,
                                                 monkeypatch):
    """A batch-level kernel error re-runs requests one by one so only
    the culprit fails."""
    from repro.serve.plan import SolvePlan

    real_execute = SolvePlan.execute
    calls = {"n": 0}

    def flaky(self, op, B):
        calls["n"] += 1
        B = np.asarray(B)
        if B.ndim == 2 and B.shape[1] > 1:
            raise FloatingPointError("batch blew up")
        return real_execute(self, op, B)

    monkeypatch.setattr(SolvePlan, "execute", flaky)
    tickets = [service.submit(GRID, "27pt", b) for b in _rhs(rng, 3)]
    assert service.drain() == 3  # all succeed individually
    for t in tickets:
        assert t.result().shape == (N,)
        assert t.metrics["batch_k"] == 1
    assert calls["n"] == 4  # 1 failed batch + 3 solo runs


def test_request_metrics_contents(service, rng):
    t = service.submit(GRID, "27pt", rng.standard_normal(N))
    service.drain()
    m = t.metrics
    assert m["op"] == "lower"
    assert m["bsize"] == 4
    assert m["strategy"] == "dbsr"
    assert m["seconds"] > 0
    counts = m["counts_per_solve"]
    assert counts["bytes"]["values"] > 0
    assert counts["ops"]["vgather"] == 0


def test_spmv_op_has_no_sptrsv_counts(service, rng):
    t = service.submit(GRID, "27pt", rng.standard_normal(N), op="spmv")
    service.drain()
    assert "counts_per_solve" not in t.metrics


def test_result_timeout_before_drain(service, rng):
    t = service.submit(GRID, "27pt", rng.standard_normal(N))
    with pytest.raises(TimeoutError):
        t.result(timeout=0.01)
    service.drain()
    assert t.result().shape == (N,)


def test_drain_empty_is_noop(service):
    assert service.drain() == 0
    assert service.batches_executed == 0


def test_shared_cache_across_services(rng):
    cache = PlanCache()
    with SolveService(cache=cache, config=CFG) as a:
        a.submit(GRID, "27pt", rng.standard_normal(N))
        a.drain()
    with SolveService(cache=cache, config=CFG) as b:
        t = b.submit(GRID, "27pt", rng.standard_normal(N))
        b.drain()
    assert t.metrics["cache_hit"]
    assert cache.compiles == 1


def test_stats_aggregates(service, rng):
    for b in _rhs(rng, 5):
        service.submit(GRID, "27pt", b)
    service.drain()
    s = service.stats()
    assert s["submitted"] == 5
    assert s["completed"] == 5
    assert s["failed"] == 0
    assert s["pending"] == 0
    assert s["batches_executed"] == 2
    assert s["cache"]["compiles"] == 1
    assert "compile" in s["phases"]
    assert "solve" in s["phases"]
