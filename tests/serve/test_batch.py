"""Multi-RHS batched kernels: bit-identity and byte amortization."""

import numpy as np
import pytest

from repro.kernels.counts import (
    sptrsv_dbsr_counts,
    sptrsv_dbsr_multi_counts,
)
from repro.kernels.sptrsv_csr import split_triangular
from repro.kernels.sptrsv_dbsr import (
    sptrsv_dbsr_lower,
    sptrsv_dbsr_upper,
)
from repro.kernels.symgs import symgs_dbsr
from repro.serve.batch import (
    spmv_dbsr_multi,
    spmv_dbsr_multi_counted,
    sptrsv_dbsr_lower_multi,
    sptrsv_dbsr_lower_multi_counted,
    sptrsv_dbsr_upper_multi,
    sptrsv_dbsr_upper_multi_counted,
    symgs_dbsr_multi,
)
from repro.simd.engine import VectorEngine


@pytest.fixture(scope="module")
def factors(reordered_3d):
    csr, dbsr = reordered_3d
    L, D, U = split_triangular(csr)
    from repro.formats.dbsr import DBSRMatrix

    return (dbsr, DBSRMatrix.from_csr(L, dbsr.bsize),
            DBSRMatrix.from_csr(U, dbsr.bsize), D)


@pytest.fixture(scope="module")
def rhs_block(factors):
    rng = np.random.default_rng(7)
    n = factors[0].n_rows
    return rng.standard_normal((n, 8))


@pytest.mark.parametrize("k", [1, 2, 3, 8])
def test_lower_multi_bitwise_equals_unbatched(factors, rhs_block, k):
    _, Ld, _, D = factors
    B = rhs_block[:, :k]
    X = sptrsv_dbsr_lower_multi(Ld, B, diag=D)
    for j in range(k):
        xj = sptrsv_dbsr_lower(Ld, B[:, j], diag=D)
        assert np.array_equal(X[:, j], xj)


@pytest.mark.parametrize("k", [1, 2, 8])
def test_upper_multi_bitwise_equals_unbatched(factors, rhs_block, k):
    _, _, Ud, D = factors
    B = rhs_block[:, :k]
    X = sptrsv_dbsr_upper_multi(Ud, B, diag=D)
    for j in range(k):
        assert np.array_equal(X[:, j],
                              sptrsv_dbsr_upper(Ud, B[:, j], diag=D))


def test_lower_multi_unit_diag(factors, rhs_block):
    _, Ld, _, _ = factors
    B = rhs_block[:, :3]
    X = sptrsv_dbsr_lower_multi(Ld, B)
    for j in range(3):
        assert np.array_equal(X[:, j], sptrsv_dbsr_lower(Ld, B[:, j]))


@pytest.mark.parametrize("k", [1, 4])
def test_spmv_multi_bitwise_equals_counted_twin(factors, rhs_block, k):
    """The fast SpMV pins the canonical sequential-chain rounding
    (bitwise vs the counted twin); ``matvec``'s pairwise ``reduceat``
    summation only agrees to roundoff."""
    dbsr = factors[0]
    X = rhs_block[:, :k]
    Y = spmv_dbsr_multi(dbsr, X)
    engine = VectorEngine(dbsr.bsize, dtype=dbsr.values.dtype)
    assert np.array_equal(Y, spmv_dbsr_multi_counted(dbsr, X, engine))
    for j in range(k):
        assert np.allclose(Y[:, j], dbsr.matvec(X[:, j]),
                           rtol=1e-12, atol=1e-12)


def test_symgs_multi_bitwise_equals_unbatched(reordered_3d, rhs_block):
    csr, dbsr = reordered_3d
    diag = csr.diagonal()
    B = rhs_block[:, :4]
    X = np.zeros_like(B)
    symgs_dbsr_multi(dbsr, diag, X, B)
    for j in range(4):
        xj = np.zeros(dbsr.n_rows)
        symgs_dbsr(dbsr, diag, xj, B[:, j].copy())
        assert np.array_equal(X[:, j], xj)


@pytest.mark.parametrize("k", [1, 2, 4, 8])
def test_counted_twin_matches_closed_form(factors, rhs_block, k):
    _, Ld, _, D = factors
    engine = VectorEngine(Ld.bsize)
    X = sptrsv_dbsr_lower_multi_counted(Ld, rhs_block[:, :k], engine,
                                        diag=D)
    closed = sptrsv_dbsr_multi_counts(Ld, k, divide=True)
    c = engine.counter
    assert c.vload == closed.vload
    assert c.vfma == closed.vfma
    assert c.vstore == closed.vstore
    assert c.vdiv == closed.vdiv
    # (sload is modeled, not instrumented — same convention as the
    # unbatched twins, which charge index traffic via bytes_index.)
    assert c.bytes_values == closed.bytes_values
    assert c.bytes_index == closed.bytes_index
    assert c.bytes_vector == closed.bytes_vector
    # And it still computes the right answer.
    for j in range(k):
        assert np.array_equal(X[:, j],
                              sptrsv_dbsr_lower(Ld, rhs_block[:, j],
                                                diag=D))


def test_counted_upper_twin_matches_closed_form(factors, rhs_block):
    _, _, Ud, D = factors
    engine = VectorEngine(Ud.bsize)
    sptrsv_dbsr_upper_multi_counted(Ud, rhs_block[:, :3], engine, diag=D)
    closed = sptrsv_dbsr_multi_counts(Ud, 3, divide=True)
    assert engine.counter.bytes_values == closed.bytes_values
    assert engine.counter.total_vector_ops == closed.total_vector_ops


def test_multi_counts_reduce_to_single_rhs_counts(factors):
    """k = 1 must reproduce the established unbatched closed form."""
    _, Ld, _, _ = factors
    for divide in (False, True):
        single = sptrsv_dbsr_counts(Ld, divide=divide)
        multi = sptrsv_dbsr_multi_counts(Ld, 1, divide=divide)
        for f in ("vload", "vfma", "vstore", "vdiv", "sload",
                  "bytes_values", "bytes_index", "bytes_vector"):
            assert getattr(single, f) == getattr(multi, f), (f, divide)


def test_value_bytes_amortize_as_one_over_k(factors, rhs_block):
    """The serving claim: value-stream bytes per solve fall as 1/k."""
    _, Ld, _, D = factors
    per_solve = []
    for k in (1, 2, 4, 8):
        engine = VectorEngine(Ld.bsize)
        sptrsv_dbsr_lower_multi_counted(Ld, rhs_block[:, :k], engine,
                                        diag=D)
        # Batch-level value bytes never grow with k...
        assert engine.counter.bytes_values \
            == Ld.n_tiles * Ld.bsize * Ld.values.itemsize
        per_solve.append(engine.counter.bytes_values / k)
    # ...so per-solve value bytes strictly decrease, exactly 1/k.
    assert all(b > a for b, a in zip(per_solve, per_solve[1:]))
    assert per_solve[0] / per_solve[-1] == pytest.approx(8.0)


def test_gather_free(factors, rhs_block):
    """Batched kernels must not introduce gathers."""
    _, Ld, _, D = factors
    engine = VectorEngine(Ld.bsize)
    sptrsv_dbsr_lower_multi_counted(Ld, rhs_block, engine, diag=D)
    assert engine.counter.vgather == 0
    assert engine.counter.bytes_gathered == 0


def test_rhs_block_validation(factors):
    _, Ld, _, _ = factors
    with pytest.raises(ValueError):
        sptrsv_dbsr_lower_multi(Ld, np.zeros(Ld.n_rows))  # 1-D
    with pytest.raises(ValueError):
        sptrsv_dbsr_lower_multi(Ld, np.zeros((Ld.n_rows + 1, 2)))
