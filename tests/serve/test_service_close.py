"""close() semantics: no ticket is ever left forever-pending.

Regression suite for the close/drain race: ``SolveService.close()``
during an in-flight ``drain()`` must fail every not-yet-executed
ticket with a typed :class:`ServiceClosed` — a thread blocked in
``ticket.result()`` raises instead of hanging.
"""

import threading
import time

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.resilience.errors import ServiceClosed
from repro.serve.plan import PlanConfig
from repro.serve.service import SolveService

GRID = StructuredGrid((6, 6, 6))
CONFIG = PlanConfig(bsize=4)


def _rhs(seed=0):
    return np.random.default_rng(seed).standard_normal(GRID.n_points)


def test_close_fails_queued_tickets():
    svc = SolveService(config=CONFIG)
    tickets = [svc.submit(GRID, "27pt", _rhs(i)) for i in range(3)]
    svc.close()
    for t in tickets:
        assert t.done
        with pytest.raises(ServiceClosed) as ei:
            t.result(timeout=0)
        assert ei.value.ticket_ids == [t.request_id]
    assert svc.failed == 3
    assert svc.n_pending == 0


def test_close_during_inflight_drain_fails_pending_tickets():
    """A threaded drain racing close(): tickets fail typed, not hang."""
    svc = SolveService(config=CONFIG)
    t_lower = svc.submit(GRID, "27pt", _rhs(0), op="lower")
    t_upper = svc.submit(GRID, "27pt", _rhs(1), op="upper")
    orig = svc._plan_for
    compiling = threading.Event()
    closed = threading.Event()

    def slow_plan_for(entry):
        compiling.set()
        # Hold the drain mid-compile until close() has run, so the
        # in-between-groups closed check is what fires.
        assert closed.wait(5.0)
        return orig(entry)

    svc._plan_for = slow_plan_for
    drain_error = []

    def drain():
        try:
            svc.drain()
        except BaseException as exc:  # noqa: BLE001 - asserted below
            drain_error.append(exc)

    th = threading.Thread(target=drain)
    th.start()
    assert compiling.wait(5.0)
    svc.close()
    closed.set()
    th.join(10.0)
    assert not th.is_alive()
    # The drain itself surfaced the close, naming every dropped ticket.
    assert len(drain_error) == 1
    assert isinstance(drain_error[0], ServiceClosed)
    assert sorted(drain_error[0].ticket_ids) == sorted(
        [t_lower.request_id, t_upper.request_id])
    # result() raises immediately — the forever-pending bug is the
    # TimeoutError this wait-with-timeout would otherwise turn into.
    for t in (t_lower, t_upper):
        assert t.done
        with pytest.raises(ServiceClosed):
            t.result(timeout=1.0)


def test_submit_and_drain_after_close_raise():
    svc = SolveService(config=CONFIG)
    svc.close()
    with pytest.raises(ServiceClosed):
        svc.submit(GRID, "27pt", _rhs())
    with pytest.raises(ServiceClosed):
        svc.drain()


def test_close_is_idempotent():
    svc = SolveService(config=CONFIG)
    svc.submit(GRID, "27pt", _rhs())
    svc.close()
    svc.close()
    assert svc.failed == 1


def test_requeue_into_closed_service_fails_instead():
    """The drain-timeout requeue path cannot resurrect a closed queue."""
    svc = SolveService(config=CONFIG)
    ticket = svc.submit(GRID, "27pt", _rhs(0))
    with svc._lock:
        entry = svc._pending[0]
    svc.close()
    assert ticket.done  # close() already failed it ...
    with pytest.raises(ServiceClosed):
        svc._requeue_and_raise(0.0, [entry])
    # ... and the requeue attempt neither re-queued nor un-finished it.
    assert svc.n_pending == 0
    with pytest.raises(ServiceClosed):
        ticket.result(timeout=0)


def test_completed_work_survives_close():
    svc = SolveService(config=CONFIG)
    ticket = svc.submit(GRID, "27pt", _rhs(0))
    svc.drain()
    x = ticket.result(timeout=0)
    svc.close()
    # First outcome wins: close() cannot overwrite a real solution.
    assert np.array_equal(ticket.result(timeout=0), x)


def test_close_unblocks_waiting_result_thread():
    svc = SolveService(config=CONFIG)
    ticket = svc.submit(GRID, "27pt", _rhs(0))
    outcome = []

    def wait():
        try:
            ticket.result(timeout=10.0)
        except BaseException as exc:  # noqa: BLE001 - asserted below
            outcome.append(exc)

    th = threading.Thread(target=wait)
    th.start()
    time.sleep(0.02)
    svc.close()
    th.join(5.0)
    assert not th.is_alive()
    assert len(outcome) == 1 and isinstance(outcome[0], ServiceClosed)
