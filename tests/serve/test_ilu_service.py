"""SolveService ILU tier: submit/drain, digest grouping, staleness."""

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.ilu.ilu0_csr import ilu0_apply_csr
from repro.resilience.errors import StaleValuesError
from repro.serve.cache import PlanCache
from repro.serve.plan import PlanConfig
from repro.serve.service import (
    SERVICE_OPS,
    RequestError,
    SolveService,
)

pytestmark = pytest.mark.fast

CFG = PlanConfig(strategy="dbsr", bsize=4, n_workers=2)
GRID = StructuredGrid((6, 6, 6))
N = GRID.n_points


@pytest.fixture()
def service():
    with SolveService(config=CFG, max_batch=4, max_pending=16) as svc:
        yield svc


def _perturbed(plan, seed=0, scale=0.05):
    rng = np.random.default_rng(seed)
    return plan.values_src * (
        1.0 + scale * rng.uniform(-1.0, 1.0, plan.values_src.shape))


def test_service_ops_includes_ilu_apply():
    assert "ilu_apply" in SERVICE_OPS


def test_ilu_apply_roundtrip_bitwise_vs_csr_factors(service):
    rng = np.random.default_rng(1)
    b = rng.standard_normal(N)
    ticket = service.submit(GRID, "27pt", b, op="ilu_apply")
    service.drain()
    z = ticket.result()
    plan = service.cache.get(ticket.fingerprint)
    factors = plan.factors.to_csr_factors()
    ref = plan.restrict(ilu0_apply_csr(factors, plan.extend(b)))
    assert np.array_equal(z, ref)


def test_batched_ilu_apply_bitwise_matches_solo(service):
    rng = np.random.default_rng(2)
    rhss = [rng.standard_normal(N) for _ in range(4)]
    tickets = [service.submit(GRID, "27pt", b, op="ilu_apply")
               for b in rhss]
    service.drain()
    assert all(t.metrics["batch_k"] == 4 for t in tickets)

    with SolveService(config=CFG, max_batch=4) as solo:
        for t, b in zip(tickets, rhss):
            ref = solo.submit(GRID, "27pt", b, op="ilu_apply")
            solo.drain()
            assert np.array_equal(t.result(), ref.result())


def test_submitted_values_trigger_one_repack(service):
    rng = np.random.default_rng(3)
    first = service.submit(GRID, "27pt", rng.standard_normal(N),
                           op="ilu_apply")
    service.drain()
    plan = service.cache.get(first.fingerprint)
    v2 = _perturbed(plan, seed=7)
    second = service.submit(GRID, "27pt", rng.standard_normal(N),
                            op="ilu_apply", values=v2)
    service.drain()
    second.result(timeout=0)
    assert service.cache.refreshes == 1
    refreshed = service.cache.get(first.fingerprint)
    assert refreshed.refreshed


def test_value_digest_splits_batches(service):
    """Requests for different snapshots must not share one plan."""
    rng = np.random.default_rng(4)
    warm = service.submit(GRID, "27pt", rng.standard_normal(N),
                          op="ilu_apply")
    service.drain()
    plan = service.cache.get(warm.fingerprint)
    v2 = _perturbed(plan, seed=8)
    a = service.submit(GRID, "27pt", rng.standard_normal(N),
                       op="ilu_apply")
    b = service.submit(GRID, "27pt", rng.standard_normal(N),
                       op="ilu_apply", values=v2)
    service.drain()
    a.result(timeout=0)
    b.result(timeout=0)
    # Different digest groups — they cannot have been coalesced.
    assert a.metrics["batch_k"] == 1
    assert b.metrics["batch_k"] == 1


def test_declared_digest_mismatch_fails_typed(service):
    rng = np.random.default_rng(5)
    warm = service.submit(GRID, "27pt", rng.standard_normal(N),
                          op="ilu_apply")
    service.drain()
    warm.result(timeout=0)
    stale = service.submit(GRID, "27pt", rng.standard_normal(N),
                           op="ilu_apply", value_digest="0" * 64)
    service.drain()
    with pytest.raises(StaleValuesError):
        stale.result(timeout=0)


def test_values_on_non_ilu_op_rejected(service):
    rng = np.random.default_rng(6)
    with pytest.raises(RequestError):
        service.submit(GRID, "27pt", rng.standard_normal(N),
                       op="lower", values=np.ones(3))
    with pytest.raises(RequestError):
        service.submit(GRID, "27pt", rng.standard_normal(N),
                       op="lower", value_digest="0" * 64)


def test_contradictory_value_digest_rejected(service):
    rng = np.random.default_rng(7)
    warm = service.submit(GRID, "27pt", rng.standard_normal(N),
                          op="ilu_apply")
    service.drain()
    plan = service.cache.get(warm.fingerprint)
    with pytest.raises(RequestError):
        service.submit(GRID, "27pt", rng.standard_normal(N),
                       op="ilu_apply", values=_perturbed(plan),
                       value_digest="0" * 64)


def test_ilu_metrics_report_counts(service):
    rng = np.random.default_rng(8)
    t = service.submit(GRID, "27pt", rng.standard_normal(N),
                       op="ilu_apply")
    service.drain()
    t.result(timeout=0)
    assert t.metrics["counts_per_solve"]["ops"]["vfma"] > 0


def test_eviction_race_does_not_abort_drain(service, monkeypatch):
    """A plan evicted between the hit lookup and the repack's
    residency check used to leak ``KeyError`` out of ``_drain_groups``,
    aborting the whole drain and failing every pending group untyped;
    the cache now falls back to a cold compile and the drain completes.
    """
    rng = np.random.default_rng(10)
    warm = service.submit(GRID, "27pt", rng.standard_normal(N),
                          op="ilu_apply")
    service.drain()
    warm.result(timeout=0)
    plan = service.cache.get(warm.fingerprint)
    cache = service.cache
    real_refresh = cache.refresh_values

    def evict_then_refresh(fingerprint, values):
        with cache._lock:
            cache._plans.pop(fingerprint, None)
        return real_refresh(fingerprint, values)

    monkeypatch.setattr(cache, "refresh_values", evict_then_refresh)
    racy = service.submit(GRID, "27pt", rng.standard_normal(N),
                          op="ilu_apply",
                          values=_perturbed(plan, seed=11))
    other = service.submit(GRID, "27pt", rng.standard_normal(N),
                           op="lower")
    assert service.drain() == 2
    assert racy.result(timeout=0) is not None
    assert other.result(timeout=0) is not None


def test_stale_failure_leaves_sibling_groups_draining(service):
    """A stale ilu group must fail alone; other ops still complete."""
    rng = np.random.default_rng(9)
    warm = service.submit(GRID, "27pt", rng.standard_normal(N),
                          op="ilu_apply")
    service.drain()
    warm.result(timeout=0)
    stale = service.submit(GRID, "27pt", rng.standard_normal(N),
                           op="ilu_apply", value_digest="1" * 64)
    good = service.submit(GRID, "27pt", rng.standard_normal(N),
                          op="lower")
    service.drain()
    assert good.result(timeout=0) is not None
    with pytest.raises(StaleValuesError):
        stale.result(timeout=0)
