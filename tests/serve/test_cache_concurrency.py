"""Regression tests for the PlanCache concurrency fixes.

Three historical bugs, each with a dedicated regression here:

* ``_compile_locks`` grew one entry per distinct fingerprint forever;
  it is now refcounted and bounded by *live* compiles.
* ``_save_picks`` wrote the picks JSON while holding the global
  ``_lock``, stalling every concurrent lookup during file I/O; writes
  now happen outside it (snapshot under the lock, ``os.replace``
  atomicity kept under a dedicated ``_persist_lock``).
* ``hit_rate``/``stats()`` read counters without the lock, so a reader
  racing the miss→hit reclassification could observe torn values;
  snapshots are now taken under one lock acquisition.
"""

import os
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.serve.cache import PlanCache
from repro.serve.plan import PlanConfig, structural_fingerprint

pytestmark = pytest.mark.fast


def _stub_compile(monkeypatch, barrier=None):
    """Replace compile_plan with a cheap fingerprint-faithful stub."""
    def fake_compile(grid, stencil, config, bsize_hint=None):
        if barrier is not None:
            barrier.wait()
        return SimpleNamespace(
            autotuned=False, bsize=1,
            fingerprint=structural_fingerprint(grid, stencil, config))

    monkeypatch.setattr("repro.serve.cache.compile_plan", fake_compile)


GRIDS = [StructuredGrid((n, 4)) for n in (2, 3, 4, 5, 6)]


class TestCompileLockPruning:
    def test_map_empty_after_sequential_compiles(self, monkeypatch):
        _stub_compile(monkeypatch)
        cache = PlanCache(capacity=2)
        for g in GRIDS:
            cache.get_or_compile(g, "5pt", PlanConfig(bsize=2))
        # 5 distinct structures (3 already evicted) — no lock leak.
        assert cache._compile_locks == {}
        assert cache.compiles == len(GRIDS)

    def test_map_bounded_by_live_compiles(self, monkeypatch):
        release = threading.Event()

        def slow_compile(grid, stencil, config, bsize_hint=None):
            started.set()
            assert release.wait(10)
            return SimpleNamespace(
                autotuned=False, bsize=1,
                fingerprint=structural_fingerprint(
                    grid, stencil, config))

        monkeypatch.setattr("repro.serve.cache.compile_plan",
                            slow_compile)
        cache = PlanCache()
        started = threading.Event()
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(cache.get_or_compile(
                    GRIDS[0], "5pt", PlanConfig(bsize=2))))
            for _ in range(4)]
        threads[0].start()
        assert started.wait(10)
        for t in threads[1:]:
            t.start()
        # One structure in flight -> exactly one lock entry, however
        # many requests coalesce on it.
        deadline = 50
        while cache._compile_locks.get(
                next(iter(cache._compile_locks), None),
                [None, 0])[1] < 4 and deadline:
            deadline -= 1
            threading.Event().wait(0.02)
        assert len(cache._compile_locks) == 1
        release.set()
        for t in threads:
            t.join(10)
        assert cache._compile_locks == {}
        assert cache.compiles == 1
        assert len(results) == 4
        # Exactly one miss; coalesced followers reclassified as hits.
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 3


class TestPicksWriteOutsideLock:
    def test_global_lock_free_during_write(self, tmp_path, monkeypatch):
        path = str(tmp_path / "picks.json")
        cache = PlanCache(capacity=4, persist_path=path)
        observed = []
        real_replace = os.replace

        def spy_replace(src, dst):
            # The fix's contract: file I/O holds only _persist_lock,
            # never the global counter lock.
            free = cache._lock.acquire(blocking=False)
            if free:
                cache._lock.release()
            observed.append((free, cache._persist_lock.locked()))
            return real_replace(src, dst)

        monkeypatch.setattr("repro.serve.cache.os.replace", spy_replace)
        plan, hit = cache.get_or_compile(
            StructuredGrid((4, 4)), "5pt", PlanConfig())
        assert not hit and plan.autotuned
        assert observed == [(True, True)]

    def test_atomic_persistence_survives(self, tmp_path):
        path = str(tmp_path / "picks.json")
        cache = PlanCache(persist_path=path)
        plan, _ = cache.get_or_compile(
            StructuredGrid((4, 4)), "5pt", PlanConfig())
        assert os.path.exists(path)
        assert not os.path.exists(path + ".tmp")
        fresh = PlanCache(persist_path=path)
        assert fresh.persisted_bsize(plan.fingerprint) == plan.bsize


class TestSnapshotConsistency:
    def test_threaded_stats_never_torn(self, monkeypatch):
        _stub_compile(monkeypatch)
        cache = PlanCache(capacity=len(GRIDS))
        stop = threading.Event()
        bad: list = []

        def reader():
            last_total = 0
            while not stop.is_set():
                snap = cache.stats()
                total = snap["hits"] + snap["misses"]
                expect = (snap["hits"] / total) if total else 0.0
                if snap["hit_rate"] != expect or total < last_total \
                        or snap["hits"] < 0 or snap["misses"] < 0:
                    bad.append(snap)
                    return
                last_total = total

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(300):
                g = GRIDS[int(rng.integers(len(GRIDS)))]
                cache.get_or_compile(g, "5pt", PlanConfig(bsize=2))

        readers = [threading.Thread(target=reader) for _ in range(2)]
        workers = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in readers + workers:
            t.start()
        for t in workers:
            t.join(30)
        stop.set()
        for t in readers:
            t.join(30)
        assert not bad, f"torn snapshot observed: {bad[0]}"
        snap = cache.stats()
        assert snap["hits"] + snap["misses"] == 8 * 300
        assert snap["compiles"] == len(GRIDS)
        assert cache.hit_rate == snap["hits"] / (8 * 300)

    def test_peek_does_not_touch_counters(self, monkeypatch):
        _stub_compile(monkeypatch)
        cache = PlanCache()
        plan, _ = cache.get_or_compile(GRIDS[0], "5pt",
                                       PlanConfig(bsize=2))
        before = cache.stats()
        assert cache.peek(plan.fingerprint) is plan
        assert cache.peek("no-such-fingerprint") is None
        assert cache.stats() == before
