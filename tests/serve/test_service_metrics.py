"""SolveService metrics registry: persistent counters, requeue cycles.

Regression suite for the stats bug where ``stats()`` rebuilt its dict
per call from ad-hoc attributes: counters now live in a
:class:`~repro.observe.metrics.MetricsRegistry` owned by the service,
``stats()`` is a pure view, and nothing resets across drain cycles —
including a ``drain(timeout=)`` that requeues everything.
"""

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.observe.metrics import MetricsRegistry
from repro.resilience.errors import DrainTimeout
from repro.serve.plan import PlanConfig
from repro.serve.service import SolveService

GRID = StructuredGrid((6, 6, 6))
CONFIG = PlanConfig(bsize=4)


def _rhs(seed=0):
    return np.random.default_rng(seed).standard_normal(GRID.n_points)


def test_service_owns_a_metrics_registry():
    with SolveService(config=CONFIG) as svc:
        assert isinstance(svc.metrics, MetricsRegistry)
        snap = svc.metrics.snapshot()
        for name in ("serve.submitted", "serve.completed",
                     "serve.failed", "serve.batches",
                     "serve.requeued", "serve.pending",
                     "serve.batch_width", "serve.drain_seconds"):
            assert name in snap, name


def test_legacy_attributes_are_registry_views():
    with SolveService(config=CONFIG) as svc:
        svc.submit(GRID, "27pt", _rhs())
        assert svc.submitted == 1
        svc.drain()
        assert (svc.submitted, svc.completed, svc.failed,
                svc.batches_executed) == (1, 1, 0, 1)
        snap = svc.metrics.snapshot()
        assert snap["serve.submitted"]["value"] == 1
        assert snap["serve.completed"]["value"] == 1


def test_stats_survive_drain_timeout_requeue_cycle():
    with SolveService(config=CONFIG) as svc:
        tickets = [svc.submit(GRID, "27pt", _rhs(i)) for i in range(3)]
        before = svc.stats()
        assert (before["submitted"], before["pending"]) == (3, 3)

        with pytest.raises(DrainTimeout):
            svc.drain(timeout=0.0)

        mid = svc.stats()
        # The requeue must not reset anything already accumulated.
        assert mid["submitted"] == 3
        assert mid["completed"] == 0
        assert mid["pending"] == 3
        assert mid["requeued"] == 3
        assert mid["metrics"]["serve.requeued"]["value"] == 3

        assert svc.drain() == 3
        after = svc.stats()
        assert after["submitted"] == 3  # still counting from zero time
        assert after["completed"] == 3
        assert after["pending"] == 0
        assert after["requeued"] == 3  # history, not live depth
        for t in tickets:
            assert np.all(np.isfinite(t.result()))


def test_counters_accumulate_across_many_drains():
    with SolveService(config=CONFIG) as svc:
        for i in range(3):
            svc.submit(GRID, "27pt", _rhs(i))
            svc.drain()
        s = svc.stats()
        assert (s["submitted"], s["completed"]) == (3, 3)
        assert s["batches_executed"] == 3


def test_batch_width_histogram_observes_coalesced_width():
    with SolveService(config=CONFIG) as svc:
        for i in range(4):
            svc.submit(GRID, "27pt", _rhs(i), op="lower")
        svc.drain()
        hist = svc.metrics.snapshot()["serve.batch_width"]
        assert hist["count"] == 1  # one coalesced batch...
        assert hist["sum"] == 4.0  # ...of width 4


def test_drain_seconds_histogram_populated():
    with SolveService(config=CONFIG) as svc:
        svc.submit(GRID, "27pt", _rhs())
        svc.drain()
        hist = svc.metrics.snapshot()["serve.drain_seconds"]
        assert hist["count"] == 1
        assert hist["sum"] > 0.0


def test_stats_dict_is_a_view_not_a_fresh_rebuild():
    with SolveService(config=CONFIG) as svc:
        svc.submit(GRID, "27pt", _rhs())
        a = svc.stats()
        svc.drain()
        b = svc.stats()
        # Two calls see the same underlying counters moving forward.
        assert a["submitted"] == b["submitted"] == 1
        assert a["completed"] == 0 and b["completed"] == 1
