"""PlanCache ILU paths: split fingerprint, repack, and the bugfix sweep.

Three regressions ride along, each pinned to a historical bug:

* **Resurrection race** — an :meth:`~repro.serve.cache.PlanCache.invalidate`
  landing while a compile/refresh for the same fingerprint is in
  flight used to be overwritten when the worker's ``put`` landed;
  generation counting now drops the stale insert.
* **Verify-on-hit** — a structure hit whose value digest mismatches
  must repack (values provided) or raise a *typed*
  :class:`~repro.resilience.errors.StaleValuesError` (digest declared
  without values), never silently serve old coefficients.
* **Fingerprint-scoped invalidation** — invalidating or refreshing one
  structure never flushes a sibling or perturbs its statistics.
"""

import threading

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.resilience.errors import StaleValuesError
from repro.serve.cache import PlanCache
from repro.serve.ilu_plan import ilu_structural_fingerprint
from repro.serve.plan import PlanConfig

pytestmark = pytest.mark.fast

GRID = StructuredGrid((6, 6, 6))
SIBLING = StructuredGrid((5, 5, 5))
CONFIG = PlanConfig(strategy="dbsr", bsize=4)


def _perturbed(plan, seed=0, scale=0.05):
    rng = np.random.default_rng(seed)
    return plan.values_src * (
        1.0 + scale * rng.uniform(-1.0, 1.0, plan.values_src.shape))


# Compile-through and the split fingerprint ---------------------------------

def test_miss_then_hit_and_separate_namespace():
    cache = PlanCache(capacity=4)
    plan, hit = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    assert not hit and plan.kind == "ilu"
    again, hit = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    assert hit and again is plan
    # A triangular plan of the same geometry occupies its own slot.
    tri, hit = cache.get_or_compile(GRID, "27pt", CONFIG)
    assert not hit and tri.fingerprint != plan.fingerprint
    assert len(cache) == 2


def test_hit_with_matching_digest_serves_cached_object():
    cache = PlanCache(capacity=4)
    plan, _ = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    served, hit = cache.get_or_compile_ilu(
        GRID, "27pt", CONFIG, values=plan.values_src)
    assert hit and served is plan
    assert cache.refreshes == 0


def test_hit_with_new_values_repacks_in_place():
    cache = PlanCache(capacity=4)
    plan, _ = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    v2 = _perturbed(plan, seed=2)
    served, hit = cache.get_or_compile_ilu(GRID, "27pt", CONFIG,
                                           values=v2)
    assert hit and served is not plan
    assert served.refreshed and cache.refreshes == 1
    assert cache.peek(plan.fingerprint) is served


def test_refresh_values_requires_resident_structure():
    cache = PlanCache(capacity=4)
    with pytest.raises(KeyError):
        cache.refresh_values("no-such-fingerprint", np.ones(4))


def test_refresh_values_same_digest_is_a_noop():
    cache = PlanCache(capacity=4)
    plan, _ = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    served, repacked = cache.refresh_values(plan.fingerprint,
                                            plan.values_src)
    assert not repacked and served is plan
    assert cache.refreshes == 0


def test_refresh_values_rejects_non_ilu_plans():
    cache = PlanCache(capacity=4)
    tri, _ = cache.get_or_compile(GRID, "27pt", CONFIG)
    with pytest.raises(Exception):
        cache.refresh_values(tri.fingerprint, np.ones(4))


# Bugfix 2: verify-on-hit ---------------------------------------------------

def test_declared_digest_mismatch_raises_typed_error():
    cache = PlanCache(capacity=4)
    plan, _ = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    with pytest.raises(StaleValuesError):
        cache.get_or_compile_ilu(GRID, "27pt", CONFIG,
                                 expect_digest="0" * 64)
    # The cached plan is untouched — a later resubmit with the actual
    # values repacks instead of failing.
    assert cache.peek(plan.fingerprint) is plan
    v2 = _perturbed(plan, seed=4)
    served, hit = cache.get_or_compile_ilu(GRID, "27pt", CONFIG,
                                           values=v2)
    assert hit and served.refreshed


def test_declared_digest_match_is_served():
    cache = PlanCache(capacity=4)
    plan, _ = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    served, hit = cache.get_or_compile_ilu(
        GRID, "27pt", CONFIG, expect_digest=plan.value_digest)
    assert hit and served is plan


def test_cold_compile_cannot_satisfy_foreign_digest():
    cache = PlanCache(capacity=4)
    fp = ilu_structural_fingerprint(GRID, "27pt", CONFIG)
    with pytest.raises(StaleValuesError):
        cache.get_or_compile_ilu(GRID, "27pt", CONFIG,
                                 expect_digest="f" * 64)
    # The compile itself is kept (the structure is sound), only the
    # request fails typed.
    assert cache.peek(fp) is not None


def test_values_contradicting_expect_digest_rejected():
    cache = PlanCache(capacity=4)
    plan, _ = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    with pytest.raises(Exception):
        cache.get_or_compile_ilu(GRID, "27pt", CONFIG,
                                 values=_perturbed(plan),
                                 expect_digest="0" * 64)


# Bugfix 1: resurrection race ----------------------------------------------

def test_invalidate_during_refresh_drops_stale_put():
    """The threaded race, deterministically interleaved.

    A refresh snapshots its generation, then blocks inside the repack
    (monkeypatched barrier); an invalidate lands meanwhile. The
    refresh's eventual put must be dropped — the invalidator declared
    this fingerprint poisoned — and counted in ``stale_drops``.
    """
    cache = PlanCache(capacity=4)
    plan, _ = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    fp = plan.fingerprint

    in_repack = threading.Event()
    release = threading.Event()
    from repro.serve import ilu_plan as ilu_mod

    real_repack = ilu_mod.repack_ilu_plan

    def slow_repack(p, values):
        in_repack.set()
        assert release.wait(10)
        return real_repack(p, values)

    results = {}

    def worker():
        try:
            results["out"] = cache.refresh_values(
                fp, _perturbed(plan, seed=6))
        except Exception as exc:  # pragma: no cover - diagnostic
            results["err"] = exc

    # refresh_values imports repack_ilu_plan at call time, so patching
    # the module symbol intercepts it.
    try:
        ilu_mod.repack_ilu_plan = slow_repack
        t = threading.Thread(target=worker)
        t.start()
        assert in_repack.wait(10)
        assert cache.invalidate(fp)
        release.set()
        t.join(10)
    finally:
        ilu_mod.repack_ilu_plan = real_repack

    assert "err" not in results
    fresh, repacked = results["out"]
    assert repacked  # the caller still gets its freshly packed plan
    # ... but the cache must NOT have been resurrected with it.
    assert cache.peek(fp) is None
    assert cache.stale_drops == 1


def test_invalidate_during_cold_ilu_compile_drops_stale_put():
    cache = PlanCache(capacity=4)
    fp = ilu_structural_fingerprint(GRID, "27pt", CONFIG)

    in_compile = threading.Event()
    release = threading.Event()
    from repro.serve import ilu_plan as ilu_mod

    real_compile = ilu_mod.compile_ilu_plan

    def slow_compile(grid, stencil, config, values=None,
                     bsize_hint=None):
        in_compile.set()
        assert release.wait(10)
        return real_compile(grid, stencil, config, values=values,
                            bsize_hint=bsize_hint)

    results = {}

    def worker():
        results["out"] = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)

    try:
        ilu_mod.compile_ilu_plan = slow_compile
        t = threading.Thread(target=worker)
        t.start()
        assert in_compile.wait(10)
        cache.invalidate(fp)  # nothing resident yet: bumps generation
        release.set()
        t.join(10)
    finally:
        ilu_mod.compile_ilu_plan = real_compile

    plan, hit = results["out"]
    assert not hit and plan.kind == "ilu"
    assert cache.peek(fp) is None
    assert cache.stale_drops == 1


# Coalesced-repack deadlock and residency races -----------------------------

def test_coalesced_hit_with_new_snapshot_does_not_deadlock():
    """Two concurrent first requests, same structure, different values.

    The follower coalesces on the leader's compile, sees a mismatched
    value digest and must repack — while already holding the
    per-fingerprint lock. The repack used to re-enter
    ``refresh_values`` and re-acquire that same non-reentrant lock,
    hanging the drain thread forever; it now runs the lock-assumed
    repack body directly.
    """
    from repro.serve import ilu_plan as ilu_mod
    from repro.serve.ilu_plan import value_digest

    donor, _ = PlanCache(capacity=1).get_or_compile_ilu(
        GRID, "27pt", CONFIG)
    v1 = donor.values_src
    v2 = _perturbed(donor, seed=11)

    cache = PlanCache(capacity=4)
    fp = ilu_structural_fingerprint(GRID, "27pt", CONFIG)
    in_compile = threading.Event()
    release = threading.Event()
    real_compile = ilu_mod.compile_ilu_plan

    def slow_compile(grid, stencil, config, values=None,
                     bsize_hint=None):
        in_compile.set()
        assert release.wait(10)
        return real_compile(grid, stencil, config, values=values,
                            bsize_hint=bsize_hint)

    results = {}

    def worker(name, vals):
        results[name] = cache.get_or_compile_ilu(GRID, "27pt", CONFIG,
                                                 values=vals)

    try:
        ilu_mod.compile_ilu_plan = slow_compile
        leader = threading.Thread(target=worker, args=("a", v1),
                                  daemon=True)
        leader.start()
        assert in_compile.wait(10)
        follower = threading.Thread(target=worker, args=("b", v2),
                                    daemon=True)
        follower.start()
        # Park the follower on the per-fingerprint lock (refcount 2)
        # before releasing the leader's compile.
        for _ in range(500):
            if cache._compile_locks.get(fp, [None, 0])[1] == 2:
                break
            threading.Event().wait(0.01)
        assert cache._compile_locks.get(fp, [None, 0])[1] == 2
        release.set()
        leader.join(15)
        follower.join(15)
        assert not leader.is_alive() and not follower.is_alive(), \
            "coalesced repack deadlocked on the per-fingerprint lock"
    finally:
        ilu_mod.compile_ilu_plan = real_compile

    plan_a, hit_a = results["a"]
    plan_b, hit_b = results["b"]
    assert not hit_a and hit_b
    assert plan_b.refreshed and cache.refreshes == 1
    assert plan_b.value_digest == value_digest(
        np.asarray(v2, dtype=plan_b.config.np_dtype).reshape(-1))
    assert cache.peek(fp) is plan_b


def test_invalidate_before_flock_raises_not_resurrects(monkeypatch):
    """Invalidate landing between the peek and the lock acquisition.

    No compile is in flight at invalidate time, so no generation bump
    happens; ``refresh_values`` used to fall back to the caller's
    stale plan object, repack it, and reinsert — resurrecting the
    just-poisoned entry. It must instead honor the documented contract
    and raise ``KeyError``.
    """
    cache = PlanCache(capacity=4)
    plan, _ = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    fp = plan.fingerprint
    real_acquire = cache._acquire_flock

    def invalidate_then_acquire(f):
        assert cache.invalidate(f)
        return real_acquire(f)

    monkeypatch.setattr(cache, "_acquire_flock",
                        invalidate_then_acquire)
    with pytest.raises(KeyError):
        cache.refresh_values(fp, _perturbed(plan, seed=3))
    assert cache.peek(fp) is None
    assert cache.refreshes == 0


def test_eviction_between_hit_and_repack_falls_back_to_compile(
        monkeypatch):
    """A hit whose plan vanishes before the repack recompiles instead
    of leaking ``KeyError`` (plausible under LRU capacity pressure)."""
    cache = PlanCache(capacity=4)
    plan, _ = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    fp = plan.fingerprint
    real_refresh = cache.refresh_values

    def evict_then_refresh(fingerprint, values):
        with cache._lock:
            cache._plans.pop(fingerprint, None)
        return real_refresh(fingerprint, values)

    monkeypatch.setattr(cache, "refresh_values", evict_then_refresh)
    served, hit = cache.get_or_compile_ilu(GRID, "27pt", CONFIG,
                                           values=_perturbed(plan,
                                                             seed=5))
    assert not hit and served is not plan and served.kind == "ilu"
    assert cache.peek(fp) is served
    # The lookup was first counted a hit, then reclassified when it
    # ended in a compile: one hit-or-miss event per request.
    assert cache.stats()["hits"] == 0
    assert cache.stats()["misses"] == 2


# Sibling isolation ---------------------------------------------------------

def test_invalidation_and_refresh_are_fingerprint_scoped():
    cache = PlanCache(capacity=4)
    plan_a, _ = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    plan_b, _ = cache.get_or_compile_ilu(SIBLING, "27pt", CONFIG)
    for _ in range(3):
        cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
        cache.get_or_compile_ilu(SIBLING, "27pt", CONFIG)
    hits_before = cache.hits
    assert cache.invalidate(plan_a.fingerprint)
    # B is still resident, still the same object, still a pure hit.
    served_b, hit = cache.get_or_compile_ilu(SIBLING, "27pt", CONFIG)
    assert hit and served_b is plan_b
    assert cache.hits == hits_before + 1
    # Refreshing A's values (after recompiling it) leaves B alone.
    plan_a2, _ = cache.get_or_compile_ilu(GRID, "27pt", CONFIG)
    cache.refresh_values(plan_a2.fingerprint,
                         _perturbed(plan_a2, seed=9))
    assert cache.peek(plan_b.fingerprint) is plan_b
