"""Plan compilation and structural-fingerprint stability."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.serve.plan import (
    PLAN_OPS,
    PlanConfig,
    compile_plan,
    structural_fingerprint,
)

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


@pytest.fixture(scope="module")
def grid():
    return StructuredGrid((8, 8, 8))


@pytest.fixture(scope="module")
def plan(grid):
    return compile_plan(grid, "27pt", PlanConfig(bsize=4, n_workers=2))


def test_fingerprint_is_deterministic(grid):
    cfg = PlanConfig(bsize=4, n_workers=2)
    fp1 = structural_fingerprint(grid, "27pt", cfg)
    fp2 = structural_fingerprint(StructuredGrid((8, 8, 8)), "27pt",
                                 PlanConfig(bsize=4, n_workers=2))
    assert fp1 == fp2
    assert len(fp1) == 64  # sha256 hex


def test_fingerprint_stable_across_kwarg_orderings(grid):
    """Config fields supplied in any order produce one fingerprint."""
    a = PlanConfig(**{"bsize": 4, "n_workers": 2, "dtype": "f64",
                      "strategy": "dbsr"})
    b = PlanConfig(**dict(reversed(list(
        {"bsize": 4, "n_workers": 2, "dtype": "f64",
         "strategy": "dbsr"}.items()))))
    assert structural_fingerprint(grid, "27pt", a) \
        == structural_fingerprint(grid, "27pt", b)


def test_fingerprint_stable_across_processes(grid):
    """SHA-256 over canonical JSON must not depend on the process's
    hash seed (unlike ``hash()``)."""
    script = (
        "from repro.grids.grid import StructuredGrid\n"
        "from repro.serve.plan import PlanConfig, structural_fingerprint\n"
        "print(structural_fingerprint(StructuredGrid((8, 8, 8)), '27pt',"
        " PlanConfig(bsize=4, n_workers=2)))\n"
    )
    env = dict(os.environ,
               PYTHONPATH=SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
               PYTHONHASHSEED="12345")
    out1 = subprocess.run([sys.executable, "-c", script], env=env,
                          capture_output=True, text=True, check=True)
    env["PYTHONHASHSEED"] = "54321"
    out2 = subprocess.run([sys.executable, "-c", script], env=env,
                          capture_output=True, text=True, check=True)
    local = structural_fingerprint(grid, "27pt",
                                   PlanConfig(bsize=4, n_workers=2))
    assert out1.stdout.strip() == out2.stdout.strip() == local


@pytest.mark.parametrize("change", [
    {"bsize": 8},
    {"dtype": "f32"},
    {"strategy": "sell"},
    {"n_workers": 8},
    {"machine": "phytium"},
    {"groups_per_worker": 2},
])
def test_fingerprint_distinguishes_config_fields(grid, change):
    base = PlanConfig(bsize=4, n_workers=2)
    other = PlanConfig(**{**{"bsize": 4, "n_workers": 2}, **change})
    assert structural_fingerprint(grid, "27pt", base) \
        != structural_fingerprint(grid, "27pt", other)


def test_fingerprint_distinguishes_structure(grid):
    cfg = PlanConfig(bsize=4)
    assert structural_fingerprint(grid, "27pt", cfg) \
        != structural_fingerprint(grid, "7pt", cfg)
    assert structural_fingerprint(grid, "27pt", cfg) \
        != structural_fingerprint(StructuredGrid((8, 8, 4)), "27pt", cfg)


def test_fingerprint_auto_bsize_distinct_from_pinned(grid):
    assert structural_fingerprint(grid, "27pt", PlanConfig(bsize=None)) \
        != structural_fingerprint(grid, "27pt", PlanConfig(bsize=4))


def test_compiled_plan_artifacts(plan):
    assert plan.bsize == 4
    assert plan.dbsr.bsize == 4
    assert plan.n == 512
    assert plan.n_padded % 4 == 0
    assert plan.lower.n_rows == plan.n_padded
    assert plan.compile_seconds > 0
    assert not plan.autotuned
    desc = plan.describe()
    assert desc["fingerprint"] == plan.fingerprint
    json.dumps(desc)  # JSON-serializable


def test_plan_solves_are_correct(plan, rng):
    """lower/upper solves actually solve their triangular systems."""
    b = rng.standard_normal(plan.n)
    x = plan.execute("lower", b)
    Ap = plan.matrix
    # Verify in padded space: (L + D) xp == bp.
    from repro.kernels.sptrsv_csr import split_triangular

    L, D, U = split_triangular(Ap)
    xp = plan.extend(x)
    bp = plan.extend(b)
    resid = L.matvec(xp) + D * xp - bp
    assert np.abs(resid).max() < 1e-10


def test_plan_spmv_matches_csr(plan, rng):
    x = rng.standard_normal(plan.n)
    y = plan.execute("spmv", x)
    yp = plan.matrix.matvec(plan.extend(x))
    assert np.allclose(y, plan.restrict(yp))


def test_all_ops_accept_single_and_batched(plan, rng):
    B = rng.standard_normal((plan.n, 3))
    for op in PLAN_OPS:
        X = plan.execute(op, B)
        assert X.shape == (plan.n, 3)
        for j in range(3):
            assert np.array_equal(X[:, j], plan.execute(op, B[:, j])), op


def test_sell_strategy_compiles_and_solves(grid, rng):
    plan = compile_plan(grid, "27pt",
                        PlanConfig(bsize=4, strategy="sell"))
    assert plan.sell_lower is not None
    b = rng.standard_normal(plan.n)
    x = plan.execute("lower", b)
    from repro.kernels.sptrsv_csr import split_triangular

    L, D, _ = split_triangular(plan.matrix)
    xp = plan.extend(x)
    assert np.abs(L.matvec(xp) + D * xp - plan.extend(b)).max() < 1e-10


def test_autotune_plan_resolves_bsize(grid):
    plan = compile_plan(grid, "27pt",
                        PlanConfig(bsize=None, machine="kp920",
                                   n_workers=2))
    assert plan.autotuned
    assert plan.bsize >= 1
    # bsize_hint skips autotune but must land on the same artifacts.
    hinted = compile_plan(grid, "27pt",
                          PlanConfig(bsize=None, machine="kp920",
                                     n_workers=2),
                          bsize_hint=plan.bsize)
    assert not hinted.autotuned
    assert hinted.bsize == plan.bsize


def test_bad_op_and_bad_rhs_rejected(plan):
    with pytest.raises(ValueError):
        plan.execute("nope", np.zeros(plan.n))
    with pytest.raises(ValueError):
        plan.execute("lower", np.zeros(plan.n + 1))
