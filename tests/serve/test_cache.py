"""PlanCache: LRU semantics, counters, persistence, thread-safety."""

import json
import threading

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.serve.cache import PlanCache
from repro.serve.plan import PlanConfig, structural_fingerprint


CFG = PlanConfig(bsize=4, n_workers=2)


def _grid(nx=8):
    return StructuredGrid((nx, nx, nx))


def test_miss_then_hit_counters():
    cache = PlanCache(capacity=4)
    plan, hit = cache.get_or_compile(_grid(), "27pt", CFG)
    assert not hit
    again, hit2 = cache.get_or_compile(_grid(), "27pt", CFG)
    assert hit2
    assert again is plan  # same object, not a recompile
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.compiles == 1
    assert cache.compile_seconds > 0
    assert cache.hit_rate == 0.5
    assert len(cache) == 1
    assert plan.fingerprint in cache


def test_lru_eviction_order():
    cache = PlanCache(capacity=2)
    p1, _ = cache.get_or_compile(_grid(4), "7pt", CFG)
    p2, _ = cache.get_or_compile(_grid(4), "27pt", CFG)
    # Touch p1 so p2 becomes least-recently-used.
    cache.get_or_compile(_grid(4), "7pt", CFG)
    cache.get_or_compile(_grid(6), "7pt", CFG)  # evicts p2
    assert cache.evictions == 1
    assert p1.fingerprint in cache
    assert p2.fingerprint not in cache
    # Re-requesting the evicted structure recompiles.
    _, hit = cache.get_or_compile(_grid(4), "27pt", CFG)
    assert not hit
    assert cache.compiles == 4


def test_get_without_entry_counts_miss():
    cache = PlanCache()
    assert cache.get("0" * 64) is None
    assert cache.misses == 1
    assert cache.hit_rate == 0.0


def test_cached_plan_results_bit_identical_to_fresh(rng):
    """ISSUE criterion: a cached plan must produce bit-identical
    results vs a freshly compiled plan for the same structure."""
    from repro.serve.plan import compile_plan

    cache = PlanCache()
    cached, _ = cache.get_or_compile(_grid(), "27pt", CFG)
    fresh = compile_plan(_grid(), "27pt", CFG)
    assert cached.fingerprint == fresh.fingerprint
    b = rng.standard_normal(cached.n)
    for op in ("lower", "upper", "spmv", "symgs"):
        assert np.array_equal(cached.execute(op, b),
                              fresh.execute(op, b)), op


def test_concurrent_same_structure_compiles_once():
    cache = PlanCache()
    results = []
    barrier = threading.Barrier(4)

    def worker():
        barrier.wait()
        results.append(cache.get_or_compile(_grid(), "27pt", CFG))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert cache.compiles == 1
    plans = {id(plan) for plan, _ in results}
    assert len(plans) == 1  # everyone got the same object
    # Exactly one miss; the other three are (reclassified) hits.
    assert cache.misses == 1
    assert cache.hits == 3


def test_autotune_pick_persisted_across_instances(tmp_path):
    path = str(tmp_path / "picks.json")
    auto = PlanConfig(bsize=None, machine="kp920", n_workers=2)
    cache1 = PlanCache(persist_path=path)
    plan1, _ = cache1.get_or_compile(_grid(), "27pt", auto)
    assert plan1.autotuned
    blob = json.loads(open(path).read())
    assert blob["schema"] == "dbsr-repro/autotune-picks/v2"
    fp = structural_fingerprint(_grid(), "27pt", auto)
    assert blob["autotune_picks"][fp]["bsize"] == plan1.bsize
    assert blob["autotune_picks"][fp]["backend"] == auto.backend

    # A cold cache in a "new process" reuses the pick: same bsize,
    # no autotune sweep on the recompile.
    cache2 = PlanCache(persist_path=path)
    assert cache2.persisted_bsize(fp) == plan1.bsize
    plan2, hit = cache2.get_or_compile(_grid(), "27pt", auto)
    assert not hit  # cold cache still compiles...
    assert not plan2.autotuned  # ...but skipped the sweep
    assert plan2.bsize == plan1.bsize
    assert plan2.fingerprint == plan1.fingerprint


def test_corrupt_persist_file_is_ignored(tmp_path):
    path = tmp_path / "picks.json"
    path.write_text("{not json")
    cache = PlanCache(persist_path=str(path))
    assert cache.stats()["persisted_picks"] == 0
    # And serving still works end to end.
    plan, _ = cache.get_or_compile(_grid(4), "7pt", CFG)
    assert plan.n == 64


def test_pinned_bsize_not_persisted(tmp_path):
    path = tmp_path / "picks.json"
    cache = PlanCache(persist_path=str(path))
    cache.get_or_compile(_grid(), "27pt", CFG)  # bsize pinned to 4
    assert not path.exists()


def test_stats_schema():
    cache = PlanCache(capacity=3)
    cache.get_or_compile(_grid(4), "7pt", CFG)
    s = cache.stats()
    assert s["capacity"] == 3
    assert s["size"] == 1
    assert s["compiles"] == 1
    assert set(s) == {"capacity", "size", "hits", "misses", "hit_rate",
                      "evictions", "invalidations", "compiles",
                      "compile_seconds", "persisted_picks", "refreshes",
                      "refresh_seconds", "stale_drops"}
    json.dumps(s)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


def test_legacy_v1_pick_file_ignored_with_warning(tmp_path):
    """Schema drift regression: a v1 pick file (pre-backend keying)
    must be discarded with a warning, not silently half-read."""
    path = tmp_path / "picks.json"
    path.write_text(json.dumps({
        "schema": "dbsr-repro/autotune-picks/v1",
        "autotune_picks": {"deadbeef": {"bsize": 64}},
    }))
    with pytest.warns(RuntimeWarning, match="autotune-picks/v2"):
        cache = PlanCache(persist_path=str(path))
    assert cache.stats()["persisted_picks"] == 0


def test_schemaless_json_with_picks_key_ignored(tmp_path):
    path = tmp_path / "picks.json"
    path.write_text(json.dumps({
        "autotune_picks": {"deadbeef": {"bsize": 64}},
    }))
    with pytest.warns(RuntimeWarning, match="schema None"):
        cache = PlanCache(persist_path=str(path))
    assert cache.persisted_bsize("deadbeef") is None


def test_current_schema_file_loads_silently(tmp_path):
    import warnings as _warnings

    path = tmp_path / "picks.json"
    path.write_text(json.dumps({
        "schema": "dbsr-repro/autotune-picks/v2",
        "autotune_picks": {"cafe": {"bsize": 8, "backend": "numpy-fast"}},
    }))
    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        cache = PlanCache(persist_path=str(path))
    assert cache.persisted_bsize("cafe") == 8
