"""Deadline edge cases on the synchronous submit/drain path.

Three boundaries the gateway's admission control leans on:

* a request whose deadline falls *exactly* at execution time is still
  served (the contract is strict expiry: ``now > deadline_at`` fails,
  ``now == deadline_at`` does not);
* a deadline that expires between admission (submit) and batch staging
  fails only its own ticket, not its batch-mates;
* a ``drain(timeout=)`` requeue cycle preserves every ticket's
  absolute expiry — requeueing neither extends nor resets deadlines.
"""

import time

import numpy as np
import pytest

import repro.serve.service as service_mod
from repro.grids.grid import StructuredGrid
from repro.resilience.errors import DeadlineExceeded, DrainTimeout
from repro.serve.plan import PlanConfig
from repro.serve.service import SolveService

GRID = StructuredGrid((6, 6, 6))
CONFIG = PlanConfig(bsize=4)


def _rhs(seed=0):
    return np.random.default_rng(seed).standard_normal(GRID.n_points)


@pytest.fixture
def clock(monkeypatch):
    """Freeze the service module's monotonic clock at a settable value."""
    now = [1000.0]
    monkeypatch.setattr(service_mod.time, "monotonic", lambda: now[0])
    return now


def test_deadline_exactly_at_boundary_still_executes(clock):
    with SolveService(config=CONFIG) as svc:
        ticket = svc.submit(GRID, "27pt", _rhs(0), deadline=5.0)
        clock[0] = 1005.0  # now == deadline_at, not past it
        assert svc.drain() == 1
        assert np.all(np.isfinite(ticket.result(timeout=0)))


def test_deadline_one_tick_past_boundary_fails(clock):
    with SolveService(config=CONFIG) as svc:
        ticket = svc.submit(GRID, "27pt", _rhs(0), deadline=5.0)
        clock[0] = np.nextafter(1005.0, np.inf)
        assert svc.drain() == 0
        with pytest.raises(DeadlineExceeded):
            ticket.result(timeout=0)


def test_deadline_expiring_between_admission_and_staging(clock):
    """Expiry after submit but before the batch stages fails only the
    stale ticket; its batch-mate still executes in the same drain."""
    with SolveService(config=CONFIG) as svc:
        stale = svc.submit(GRID, "27pt", _rhs(0), deadline=0.5)
        clock[0] += 1.0  # past stale's expiry, before any staging
        fresh = svc.submit(GRID, "27pt", _rhs(1), deadline=60.0)
        assert svc.drain() == 1
        with pytest.raises(DeadlineExceeded) as ei:
            stale.result(timeout=0)
        assert ei.value.request_id == stale.request_id
        assert ei.value.deadline_seconds == 0.5
        assert np.all(np.isfinite(fresh.result(timeout=0)))
        assert svc.failed == 1 and svc.completed == 1


def test_drain_requeue_preserves_per_ticket_deadlines():
    with SolveService(config=CONFIG) as svc:
        ticket = svc.submit(GRID, "27pt", _rhs(0), deadline=0.15)
        with svc._lock:
            deadline_at = svc._pending[0].deadline_at
        with pytest.raises(DrainTimeout):
            svc.drain(timeout=0.0)
        # Re-queued with the *same* absolute expiry — bit-identical.
        with svc._lock:
            entry = svc._pending[0]
        assert entry.ticket.request_id == ticket.request_id
        assert entry.deadline_at == deadline_at
        assert entry.deadline_seconds == 0.15
        # The preserved deadline still bites once it truly passes.
        time.sleep(0.2)
        assert svc.drain() == 0
        with pytest.raises(DeadlineExceeded):
            ticket.result(timeout=0)


def test_drain_requeue_preserves_no_deadline_as_no_deadline():
    with SolveService(config=CONFIG) as svc:
        ticket = svc.submit(GRID, "27pt", _rhs(0))
        with pytest.raises(DrainTimeout):
            svc.drain(timeout=0.0)
        with svc._lock:
            assert svc._pending[0].deadline_at is None
        time.sleep(0.05)
        assert svc.drain() == 1
        assert np.all(np.isfinite(ticket.result(timeout=0)))
