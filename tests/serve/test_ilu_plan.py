"""ILU(0) serving plans: bit-identity, repack, split fingerprint.

The serving tier's correctness story is bitwise, not approximate:

* every backend tier and every batch width of :meth:`ILUPlan.apply`
  must equal :func:`repro.ilu.ilu0_csr.ilu0_apply_csr` run over the
  *projected* scalar factors, per column, exactly;
* :func:`repack_ilu_plan` (and the schedule-replay refactorization
  underneath it) must reproduce a cold compile bit for bit.
"""

import numpy as np
import pytest

from repro.backends import available_backends
from repro.grids.grid import StructuredGrid
from repro.ilu.ilu0_csr import ilu0_apply_csr
from repro.ilu.ilu0_dbsr import (
    build_ilu0_schedule,
    ilu0_factorize_dbsr,
    ilu0_refactorize_dbsr,
)
from repro.serve.ilu_plan import (
    ILUPlan,
    compile_ilu_plan,
    ilu_structural_fingerprint,
    repack_ilu_plan,
    value_digest,
)
from repro.serve.plan import PlanConfig, structural_fingerprint

pytestmark = pytest.mark.fast

GRID = StructuredGrid((6, 6, 6))
CONFIG = PlanConfig(strategy="dbsr", bsize=4)
#: (5,5,5) with bsize 8 pads (125 -> 128): the padded-lane regime
#: where scalar re-factorization of the padded CSR is *not* a bitwise
#: reference but the block-factor projection is.
PADDED_GRID = StructuredGrid((5, 5, 5))
PADDED_CONFIG = PlanConfig(strategy="dbsr", bsize=8)


def _perturbed(plan, seed=0, scale=0.05):
    rng = np.random.default_rng(seed)
    return plan.values_src * (
        1.0 + scale * rng.uniform(-1.0, 1.0, plan.values_src.shape))


# Fingerprints --------------------------------------------------------------

def test_structure_hash_is_domain_tagged():
    base = structural_fingerprint(GRID, "27pt", CONFIG)
    ilu = ilu_structural_fingerprint(GRID, "27pt", CONFIG)
    assert ilu != base
    assert ilu == ilu_structural_fingerprint(GRID, "27pt", CONFIG)


def test_value_digest_seals_the_snapshot():
    plan = compile_ilu_plan(GRID, "27pt", CONFIG)
    assert plan.value_digest == value_digest(plan.values_src)
    v2 = _perturbed(plan)
    assert value_digest(v2) != plan.value_digest


def test_compile_rejects_non_dbsr_strategy():
    with pytest.raises(Exception):
        compile_ilu_plan(GRID, "27pt", PlanConfig(strategy="sell",
                                                  bsize=4))


def test_values_must_match_assembly_order_length():
    with pytest.raises(Exception):
        compile_ilu_plan(GRID, "27pt", CONFIG, values=np.ones(7))


# Bit-identity across rungs, backends and batch widths ----------------------

@pytest.mark.parametrize("grid,config", [(GRID, CONFIG),
                                         (PADDED_GRID, PADDED_CONFIG)])
@pytest.mark.parametrize("k", [1, 3, 8])
def test_apply_bitwise_equals_projected_csr_factors(grid, config, k):
    plan = compile_ilu_plan(grid, "27pt", config)
    rng = np.random.default_rng(11)
    B = rng.standard_normal((plan.n, k))
    Z = plan.apply(B)
    csr_factors = plan.factors.to_csr_factors()
    ref = np.stack(
        [plan.restrict(ilu0_apply_csr(csr_factors,
                                      plan.extend(B[:, j])))
         for j in range(k)], axis=1)
    assert np.array_equal(Z, ref)


@pytest.mark.parametrize("backend", available_backends())
def test_apply_bitwise_identical_across_backends(backend):
    cfg = PlanConfig(strategy="dbsr", bsize=4, backend=backend)
    plan = compile_ilu_plan(GRID, "27pt", cfg)
    rng = np.random.default_rng(5)
    B = rng.standard_normal((plan.n, 4))
    ref_plan = compile_ilu_plan(GRID, "27pt", CONFIG)
    assert np.array_equal(plan.apply(B), ref_plan.apply(B))


def test_single_vector_apply_matches_batched_column():
    plan = compile_ilu_plan(GRID, "27pt", CONFIG)
    rng = np.random.default_rng(9)
    B = rng.standard_normal((plan.n, 3))
    Z = plan.apply(B)
    for j in range(3):
        assert np.array_equal(plan.apply(B[:, j]), Z[:, j])


def test_execute_dispatches_only_ilu_apply():
    plan = compile_ilu_plan(GRID, "27pt", CONFIG)
    with pytest.raises(Exception):
        plan.execute("lower", np.ones(plan.n))


# Value-only repack ---------------------------------------------------------

def test_repack_bitwise_equals_cold_compile():
    plan = compile_ilu_plan(GRID, "27pt", CONFIG)
    v2 = _perturbed(plan, seed=3)
    warm = repack_ilu_plan(plan, v2)
    cold = compile_ilu_plan(GRID, "27pt", CONFIG, values=v2)
    assert np.array_equal(warm.factors.matrix.values,
                          cold.factors.matrix.values)
    assert np.array_equal(warm.matrix.data, cold.matrix.data)
    assert warm.value_digest == cold.value_digest
    assert warm.refreshed and not cold.refreshed
    B = np.random.default_rng(4).standard_normal((plan.n, 2))
    assert np.array_equal(warm.apply(B), cold.apply(B))


def test_repack_bitwise_on_padded_grid():
    plan = compile_ilu_plan(PADDED_GRID, "27pt", PADDED_CONFIG)
    v2 = _perturbed(plan, seed=8)
    warm = repack_ilu_plan(plan, v2)
    cold = compile_ilu_plan(PADDED_GRID, "27pt", PADDED_CONFIG,
                            values=v2)
    assert np.array_equal(warm.factors.matrix.values,
                          cold.factors.matrix.values)


def test_repack_reuses_structure_objects():
    plan = compile_ilu_plan(GRID, "27pt", CONFIG)
    warm = repack_ilu_plan(plan, _perturbed(plan, seed=1))
    assert warm.ordering is plan.ordering
    assert warm.csr_scatter is plan.csr_scatter
    assert warm.dbsr_scatter is plan.dbsr_scatter
    assert warm.schedule is plan.schedule
    assert warm.bsize == plan.bsize
    assert warm.fingerprint == plan.fingerprint


def test_repack_rejects_structural_drift():
    plan = compile_ilu_plan(GRID, "27pt", CONFIG)
    with pytest.raises(Exception):
        repack_ilu_plan(plan, np.ones(len(plan.values_src) + 1))


# Schedule replay -----------------------------------------------------------

@pytest.mark.parametrize("grid,config", [(GRID, CONFIG),
                                         (PADDED_GRID, PADDED_CONFIG)])
def test_schedule_replay_bitwise_equals_full_factorization(grid,
                                                           config):
    plan = compile_ilu_plan(grid, "27pt", config)
    skel = plan.factors.matrix
    # Rebuild an *unfactored* twin through the stored scatter map.
    from repro.serve.ilu_plan import _scatter_dbsr_values

    v2 = _perturbed(plan, seed=13)
    values = _scatter_dbsr_values(plan.dbsr_scatter, v2, plan.bsize,
                                  skel.values.dtype)
    from repro.formats.dbsr import DBSRMatrix

    dbsr = DBSRMatrix(skel.blk_ptr.copy(), skel.blk_ind.copy(),
                      skel.blk_offset.copy(), values, skel.shape,
                      nnz_hint=skel.nnz)
    schedule = build_ilu0_schedule(dbsr)
    slow = ilu0_factorize_dbsr(dbsr)
    fast = ilu0_refactorize_dbsr(dbsr, schedule)
    assert np.array_equal(slow.matrix.values, fast.matrix.values)
    assert np.array_equal(slow.dia_ptr, fast.dia_ptr)


def test_cold_compile_carries_a_schedule():
    plan = compile_ilu_plan(GRID, "27pt", CONFIG)
    assert plan.schedule is not None
    assert plan.schedule.n_ops > 0
    assert len(plan.schedule.upd_ptr) == plan.schedule.n_ops + 1


# Metadata ------------------------------------------------------------------

def test_op_counts_and_describe():
    plan = compile_ilu_plan(GRID, "27pt", CONFIG)
    c = plan.op_counts("ilu_apply", 4)
    assert c.vfma > 0 and c.vdiv > 0
    d = plan.describe()
    assert d["kind"] == "ilu"
    assert d["value_digest"] == plan.value_digest
    assert d["n"] == GRID.n_points
