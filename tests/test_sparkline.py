"""Tests for the ASCII sparkline renderer."""

import pytest

from repro.solvers.convergence import ConvergenceHistory
from repro.utils.sparkline import convergence_panel, sparkline


def test_monotone_curve_monotone_glyphs():
    vals = [10.0 ** (-k) for k in range(8)]
    line = sparkline(vals, log=True)
    # Glyph ranks must be non-increasing for a decreasing curve.
    from repro.utils.sparkline import _BLOCKS

    ranks = [_BLOCKS.index(c) for c in line]
    assert ranks == sorted(ranks, reverse=True)
    assert ranks[0] == len(_BLOCKS) - 1
    assert ranks[-1] == 0


def test_subsampling_caps_width():
    line = sparkline(range(1, 1000), width=40, log=False)
    assert len(line) == 40


def test_constant_series():
    line = sparkline([5.0, 5.0, 5.0], log=False)
    assert len(set(line)) == 1


def test_empty_rejected():
    with pytest.raises(ValueError):
        sparkline([])


def test_zero_values_handled_in_log_mode():
    line = sparkline([1.0, 0.0, 1e-8], log=True)
    assert len(line) == 3


def test_convergence_panel():
    h = ConvergenceHistory(tol=1e-8)
    for k in range(10):
        h.record(10.0 ** (-k))
    h.converged = True
    panel = convergence_panel(h)
    assert "iters=9" in panel
    assert "converged=True" in panel
    assert "|" in panel
