"""Cross-checks against scipy.sparse (independent implementation).

scipy is a dev-only dependency; these tests guard against systematic
errors shared by our own kernels and their reference twins.
"""

import numpy as np
import pytest

scipy_sparse = pytest.importorskip("scipy.sparse")
from scipy.sparse.linalg import splu, spsolve_triangular  # noqa: E402


def to_scipy(csr):
    return scipy_sparse.csr_matrix(
        (csr.data, csr.indices, csr.indptr), shape=csr.shape)


def test_spmv_matches_scipy(problem_3d_27pt, rng):
    A = problem_3d_27pt.matrix
    x = rng.standard_normal(A.n_cols)
    assert np.allclose(A.matvec(x), to_scipy(A) @ x)


def test_dbsr_spmv_matches_scipy(reordered_3d, rng):
    csr, dbsr = reordered_3d
    x = rng.standard_normal(csr.n_cols)
    assert np.allclose(dbsr.matvec(x), to_scipy(csr) @ x)


def test_sptrsv_matches_scipy(reordered_3d, rng):
    from repro.kernels.sptrsv_csr import split_triangular, sptrsv_csr

    csr, dbsr = reordered_3d
    L, D, U = split_triangular(csr)
    full_lower = to_scipy(L) + scipy_sparse.diags(D)
    b = rng.standard_normal(csr.n_rows)
    ours = sptrsv_csr(L, D, b)
    theirs = spsolve_triangular(full_lower.tocsr(), b, lower=True)
    assert np.allclose(ours, theirs)


def test_dbsr_sptrsv_matches_scipy(reordered_3d, rng):
    from repro.kernels.sptrsv_csr import split_triangular
    from repro.kernels.sptrsv_dbsr import sptrsv_dbsr_lower

    csr, dbsr = reordered_3d
    L, D, U = split_triangular(csr)
    from repro.formats.dbsr import DBSRMatrix

    Ld = DBSRMatrix.from_csr(L, dbsr.bsize)
    full_lower = (to_scipy(L) + scipy_sparse.diags(D)).tocsr()
    b = rng.standard_normal(csr.n_rows)
    assert np.allclose(sptrsv_dbsr_lower(Ld, b, diag=D),
                       spsolve_triangular(full_lower, b, lower=True))


def test_full_pattern_ilu_matches_scipy_lu(rng):
    """On a dense pattern, ILU(0) is exact LU; compare the solve
    against scipy's SuperLU."""
    from repro.formats.csr import CSRMatrix
    from repro.ilu.ilu0_csr import ilu0_apply_csr, ilu0_factorize_csr

    n = 12
    dense = rng.standard_normal((n, n))
    dense[np.arange(n), np.arange(n)] = np.abs(dense).sum(axis=1) + 1
    A = CSRMatrix.from_dense(dense)
    f = ilu0_factorize_csr(A)
    b = rng.standard_normal(n)
    ours = ilu0_apply_csr(f, b)
    theirs = splu(scipy_sparse.csc_matrix(dense),
                  permc_spec="NATURAL",
                  options={"SymmetricMode": False,
                           "DiagPivotThresh": 0.0}).solve(b)
    assert np.allclose(ours, theirs, atol=1e-8)


def test_cg_matches_scipy(problem_3d_7pt):
    from scipy.sparse.linalg import cg as scipy_cg

    from repro.solvers.cg import cg

    p = problem_3d_7pt
    ours, hist = cg(p.matrix, p.rhs, tol=1e-12, maxiter=500)
    theirs, info = scipy_cg(to_scipy(p.matrix), p.rhs, rtol=1e-12,
                            maxiter=500)
    assert info == 0
    assert np.allclose(ours, theirs, atol=1e-8)


def test_eigenstructure_preserved_by_vbmc(problem_2d, vbmc_2d):
    """The padded reordered operator's spectrum is the original's plus
    ones (virtual identity rows)."""
    Ap = vbmc_2d.apply_matrix(problem_2d.matrix)
    ev_orig = np.sort(np.linalg.eigvalsh(problem_2d.matrix.to_dense()))
    ev_pad = np.sort(np.linalg.eigvalsh(Ap.to_dense()))
    n_virtual = vbmc_2d.n_padded - vbmc_2d.n_orig
    merged = np.sort(np.concatenate([ev_orig, np.ones(n_virtual)]))
    assert np.allclose(ev_pad, merged, atol=1e-8)
