"""Cross-module equivalence tests — the paper's correctness claims.

Each test pins one mathematical identity the DBSR pipeline relies on,
verified end-to-end across the ordering, format, kernel and ILU layers.
"""

import numpy as np
import pytest

from repro.formats.dbsr import DBSRMatrix
from repro.grids.problems import poisson_problem
from repro.ilu.ilu0_csr import ilu0_apply_csr, ilu0_factorize_csr
from repro.ilu.ilu0_dbsr import ilu0_apply_dbsr, ilu0_factorize_dbsr
from repro.kernels.symgs import symgs_csr, symgs_dbsr
from repro.ordering.bmc import build_bmc
from repro.ordering.vbmc import build_vbmc
from repro.solvers.stationary import preconditioned_richardson


@pytest.fixture(scope="module")
def problem():
    return poisson_problem((8, 8, 8), "27pt")


def test_vbmc_gs_matches_bmc_gs(problem, rng):
    """§III-A: vectorized BMC preserves BMC's iteration *exactly* —
    lane interleaving changes only the processing order of mutually
    independent points."""
    p = problem
    bmc = build_bmc(p.grid, p.stencil, (2, 2, 2))
    vb = build_vbmc(p.grid, p.stencil, (2, 2, 2), 4)

    A_bmc = p.matrix.permute(bmc.perm.old_to_new)
    A_vb = vb.apply_matrix(p.matrix)
    dbsr = DBSRMatrix.from_csr(A_vb, 4)

    b = rng.standard_normal(p.n)
    x_bmc = np.zeros(p.n)
    x_vb = np.zeros(p.n)
    for _ in range(4):
        xb = bmc.perm.forward(x_bmc)
        symgs_csr(A_bmc, A_bmc.diagonal(), xb,
                  bmc.perm.forward(b))
        x_bmc = bmc.perm.backward(xb)

        xv = vb.extend(x_vb)
        symgs_dbsr(dbsr, A_vb.diagonal(), xv, vb.extend(b))
        x_vb = vb.restrict(xv)
        assert np.allclose(x_bmc, x_vb)


def test_vbmc_ilu_convergence_equals_bmc(problem):
    """The paper: 'Our vectorized BMC has the same convergence rate as
    BMC' — iteration counts to the same tolerance must match."""
    p = problem
    bmc = build_bmc(p.grid, p.stencil, (2, 2, 2))
    vb = build_vbmc(p.grid, p.stencil, (2, 2, 2), 4)

    A_bmc = p.matrix.permute(bmc.perm.old_to_new)
    f_bmc = ilu0_factorize_csr(A_bmc)

    A_vb = vb.apply_matrix(p.matrix)
    f_vb = ilu0_factorize_dbsr(DBSRMatrix.from_csr(A_vb, 4))

    def apply_bmc(r):
        return bmc.perm.backward(
            ilu0_apply_csr(f_bmc, bmc.perm.forward(r)))

    def apply_vb(r):
        return vb.restrict(ilu0_apply_dbsr(f_vb, vb.extend(r)))

    _, h1 = preconditioned_richardson(p.matrix, p.rhs, apply_bmc,
                                      tol=1e-9, maxiter=300)
    _, h2 = preconditioned_richardson(p.matrix, p.rhs, apply_vb,
                                      tol=1e-9, maxiter=300)
    assert h1.converged and h2.converged
    assert h1.iterations == h2.iterations


def test_padding_never_perturbs_solution(problem, rng):
    """Virtual blocks / zero lanes must be invisible: solving the
    padded reordered system equals solving the original."""
    p = problem
    # (2,2,4) blocks give 4 blocks per color < bsize, forcing padding.
    vb = build_vbmc(p.grid, p.stencil, (2, 2, 4), 8)
    assert vb.n_padded > vb.n_orig
    A_vb = vb.apply_matrix(p.matrix)
    dbsr = DBSRMatrix.from_csr(A_vb, 8)
    f = ilu0_factorize_dbsr(dbsr)
    f_ref = ilu0_factorize_csr(p.matrix)
    r = rng.standard_normal(p.n)
    z_pad = vb.restrict(ilu0_apply_dbsr(f, vb.extend(r)))
    z_ref = ilu0_apply_csr(f_ref, r)
    # Same preconditioner quality: both reduce the residual similarly.
    _, h_pad = preconditioned_richardson(
        p.matrix, p.rhs,
        lambda rr: vb.restrict(ilu0_apply_dbsr(f, vb.extend(rr))),
        tol=1e-9, maxiter=300)
    _, h_ref = preconditioned_richardson(
        p.matrix, p.rhs,
        lambda rr: ilu0_apply_csr(f_ref, rr), tol=1e-9, maxiter=300)
    assert h_pad.converged
    assert abs(h_pad.iterations - h_ref.iterations) <= \
        max(3, h_ref.iterations)
    assert np.all(np.isfinite(z_pad)) and np.all(np.isfinite(z_ref))


def test_dbsr_pipeline_solves_poisson(problem):
    """Full pipeline: reorder -> DBSR -> block ILU(0) -> Richardson
    solves the PDE to discretization accuracy."""
    p = problem
    vb = build_vbmc(p.grid, p.stencil, (2, 2, 2), 4)
    A_vb = vb.apply_matrix(p.matrix)
    f = ilu0_factorize_dbsr(DBSRMatrix.from_csr(A_vb, 4))
    x, hist = preconditioned_richardson(
        p.matrix, p.rhs,
        lambda r: vb.restrict(ilu0_apply_dbsr(f, vb.extend(r))),
        tol=1e-10, maxiter=300)
    assert hist.converged
    assert np.allclose(x, p.exact, atol=1e-6)


def test_single_precision_pipeline(problem):
    """The paper's f32 runs: the whole DBSR pipeline in float32."""
    p32 = poisson_problem((8, 8, 8), "27pt", dtype=np.float32)
    vb = build_vbmc(p32.grid, p32.stencil, (2, 2, 2), 4)
    A_vb = vb.apply_matrix(p32.matrix)
    dbsr = DBSRMatrix.from_csr(A_vb, 4)
    assert dbsr.values.dtype == np.float32
    f = ilu0_factorize_dbsr(dbsr)
    x, hist = preconditioned_richardson(
        p32.matrix, p32.rhs.astype(np.float64),
        lambda r: vb.restrict(
            ilu0_apply_dbsr(f, vb.extend(r))).astype(np.float64),
        tol=1e-5, maxiter=300)
    assert hist.converged
    assert np.allclose(x, 1.0, atol=1e-3)
