"""End-to-end scenario tests mirroring the examples."""

import numpy as np
import pytest

from repro.grids.problems import hpcg_problem, poisson_problem
from repro.hpcg.benchmark import run_hpcg
from repro.multigrid.hierarchy import build_hierarchy
from repro.multigrid.smoothers import make_smoother
from repro.multigrid.vcycle import MGPreconditioner
from repro.solvers.pcg import pcg


def test_hpcg_pipeline_all_variants_same_answer():
    answers = {}
    for variant in ("reference", "cpo", "sell", "dbsr"):
        r = run_hpcg(nx=8, variant=variant, n_levels=2, max_iters=60,
                     tol=1e-10, bsize=4, n_workers=2)
        assert r.converged, variant
        answers[variant] = r.final_relres
    assert max(answers.values()) < 1e-10


def test_2d_poisson_gmg_with_dbsr_smoother():
    p = poisson_problem((16, 16), "9pt")
    top = build_hierarchy(
        p.grid, p.stencil,
        lambda g, s, m: make_smoother("dbsr", g, s, m, bsize=4,
                                      n_workers=2),
        n_levels=2, matrix=p.matrix)
    x, hist = pcg(p.matrix, p.rhs, MGPreconditioner(top), tol=1e-10,
                  maxiter=100)
    assert hist.converged
    assert np.allclose(x, p.exact, atol=1e-7)


def test_anisotropic_domain():
    """Non-cubic local domains work end to end (grids need not be
    equidistant or cubic, §III-E)."""
    p = poisson_problem((16, 8, 4), "7pt")
    from repro.formats.dbsr import DBSRMatrix
    from repro.ilu.ilu0_dbsr import ilu0_apply_dbsr, ilu0_factorize_dbsr
    from repro.ordering.vbmc import build_vbmc
    from repro.solvers.stationary import preconditioned_richardson

    vb = build_vbmc(p.grid, p.stencil, (4, 2, 2), 4)
    f = ilu0_factorize_dbsr(
        DBSRMatrix.from_csr(vb.apply_matrix(p.matrix), 4))
    x, hist = preconditioned_richardson(
        p.matrix, p.rhs,
        lambda r: vb.restrict(ilu0_apply_dbsr(f, vb.extend(r))),
        tol=1e-9, maxiter=300)
    assert hist.converged
    assert np.allclose(x, p.exact, atol=1e-6)


def test_variable_coefficient_operator(rng):
    """DBSR carries values, not stencil constants: a non-equidistant /
    variable-coefficient operator (random SPD perturbation of the
    Laplacian) runs through the same pipeline."""
    from repro.formats.csr import CSRMatrix
    from repro.formats.dbsr import DBSRMatrix
    from repro.ilu.ilu0_dbsr import ilu0_apply_dbsr, ilu0_factorize_dbsr
    from repro.ordering.vbmc import build_vbmc
    from repro.solvers.stationary import preconditioned_richardson

    p = poisson_problem((8, 8), "5pt")
    dense = p.matrix.to_dense()
    # Scale couplings as a non-uniform mesh would.
    scale = 0.5 + rng.random(p.n)
    dense = dense * np.sqrt(scale)[:, None] * np.sqrt(scale)[None, :]
    dense[np.arange(p.n), np.arange(p.n)] = \
        np.abs(dense).sum(axis=1) - np.abs(np.diag(dense)) + 1.0
    A = CSRMatrix.from_dense(dense)
    b = A.matvec(np.ones(p.n))

    vb = build_vbmc(p.grid, p.stencil, (4, 4), 4)
    f = ilu0_factorize_dbsr(DBSRMatrix.from_csr(vb.apply_matrix(A), 4))
    x, hist = preconditioned_richardson(
        A, b, lambda r: vb.restrict(ilu0_apply_dbsr(f, vb.extend(r))),
        tol=1e-10, maxiter=400)
    assert hist.converged
    assert np.allclose(x, 1.0, atol=1e-6)


def test_hpcg_larger_grid_converges():
    r = run_hpcg(nx=16, variant="dbsr", n_levels=3, max_iters=50,
                 tol=1e-9, bsize=8, n_workers=4)
    assert r.converged
    assert r.iterations < 40


def test_hpcg_four_levels_like_paper():
    """The paper's configuration depth: a full 4-level V-cycle."""
    r = run_hpcg(nx=16, variant="dbsr", n_levels=4, max_iters=50,
                 tol=1e-9, bsize=4, n_workers=4)
    assert r.converged
    assert r.iterations <= 20


def test_hpcg_four_levels_matches_three(rng):
    """Deeper hierarchies stay in the same iteration ballpark — the
    coarse-grid correction is consistent."""
    iters = {}
    for levels in (3, 4):
        r = run_hpcg(nx=16, variant="cpo", n_levels=levels,
                     max_iters=60, tol=1e-9, bsize=4, n_workers=4)
        assert r.converged
        iters[levels] = r.iterations
    assert abs(iters[4] - iters[3]) <= 4
