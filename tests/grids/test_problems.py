"""Unit tests for problem generators."""

import numpy as np

from repro.grids.problems import hpcg_problem, poisson_problem


def test_poisson_exact_solution_is_ones():
    p = poisson_problem((6, 6))
    assert np.allclose(p.matrix.matvec(p.exact), p.rhs)
    assert np.all(p.exact == 1.0)


def test_default_stencils_by_dimension():
    assert poisson_problem((4, 4)).stencil.n_points == 5
    assert poisson_problem((4, 4, 4)).stencil.n_points == 27


def test_stencil_by_name_string():
    p = poisson_problem((4, 4), "9pt")
    assert p.stencil.n_points == 9


def test_hpcg_problem_shape():
    p = hpcg_problem(4)
    assert p.grid.dims == (4, 4, 4)
    assert p.stencil.n_points == 27
    assert p.n == 64


def test_hpcg_problem_anisotropic():
    p = hpcg_problem(4, 6, 8)
    assert p.grid.dims == (4, 6, 8)


def test_residual_norm():
    p = poisson_problem((5, 5))
    assert p.residual_norm(p.exact) < 1e-12
    assert p.residual_norm(np.zeros(p.n)) > 0


def test_float32_problem():
    p = poisson_problem((4, 4), dtype=np.float32)
    assert p.matrix.data.dtype == np.float32
    assert p.rhs.dtype == np.float32
