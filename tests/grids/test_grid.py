"""Unit tests for StructuredGrid."""

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid


def test_basic_properties():
    g = StructuredGrid((4, 3, 2))
    assert g.n_points == 24
    assert g.ndim == 3
    assert g.strides == (1, 4, 12)


def test_index_coord_roundtrip():
    g = StructuredGrid((5, 4, 3))
    for i in range(g.n_points):
        assert g.index(g.coord(i)) == i


def test_lexicographic_x_fastest():
    g = StructuredGrid((4, 4))
    assert g.index((1, 0)) == 1
    assert g.index((0, 1)) == 4
    assert g.index((3, 3)) == 15


def test_coords_array_matches_coord():
    g = StructuredGrid((3, 5))
    table = g.coords_array()
    for i in range(g.n_points):
        assert tuple(table[i]) == g.coord(i)


def test_shift_ids_interior():
    g = StructuredGrid((4, 4))
    src, dst = g.shift_ids((1, 0))
    # Points in the last column have no +x neighbor.
    assert len(src) == 12
    assert np.array_equal(dst, src + 1)


def test_shift_ids_diagonal():
    g = StructuredGrid((3, 3))
    src, dst = g.shift_ids((1, 1))
    assert len(src) == 4
    assert np.array_equal(dst, src + 1 + 3)


def test_shift_ids_zero_offset():
    g = StructuredGrid((3, 3))
    src, dst = g.shift_ids((0, 0))
    assert np.array_equal(src, dst)
    assert len(src) == 9


def test_boundary_mask():
    g = StructuredGrid((4, 4))
    mask = g.boundary_mask()
    assert mask.sum() == 12  # 16 - 4 interior
    assert not mask[g.index((1, 1))]
    assert mask[g.index((0, 2))]


def test_1d_grid():
    g = StructuredGrid((7,))
    src, dst = g.shift_ids((-1,))
    assert len(src) == 6
    assert np.array_equal(dst, src - 1)


def test_invalid_dims_rejected():
    with pytest.raises(ValueError):
        StructuredGrid((0, 4))
    with pytest.raises(ValueError):
        StructuredGrid((2, 2, 2, 2))


def test_out_of_range_coord_rejected():
    g = StructuredGrid((3, 3))
    with pytest.raises(ValueError):
        g.index((3, 0))
    with pytest.raises(ValueError):
        g.coord(9)


def test_equality_and_hash():
    assert StructuredGrid((3, 3)) == StructuredGrid((3, 3))
    assert StructuredGrid((3, 3)) != StructuredGrid((3, 4))
    assert hash(StructuredGrid((2, 5))) == hash(StructuredGrid((2, 5)))
