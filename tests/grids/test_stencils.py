"""Unit tests for the stencil library."""

import pytest

from repro.grids.stencils import (
    Stencil,
    box9_2d,
    box27_3d,
    star5_2d,
    star7_3d,
    stencil_by_name,
)


@pytest.mark.parametrize("factory,points,ndim,center", [
    (star5_2d, 5, 2, 4.0),
    (box9_2d, 9, 2, 8.0),
    (star7_3d, 7, 3, 6.0),
    (box27_3d, 27, 3, 26.0),
])
def test_predefined_shapes(factory, points, ndim, center):
    st = factory()
    assert st.n_points == points
    assert st.ndim == ndim
    assert st.center_weight() == center
    assert st.reach == 1
    assert st.is_symmetric()


def test_row_sum_zero():
    """Laplacian-style stencils: weights sum to zero (interior rows)."""
    for st in (star5_2d(), box9_2d(), star7_3d(), box27_3d()):
        assert sum(st.weights) == 0.0


def test_registry_lookup_and_aliases():
    assert stencil_by_name("27pt").n_points == 27
    assert stencil_by_name("box27_3d").n_points == 27
    assert stencil_by_name("7PT").n_points == 7
    with pytest.raises(ValueError):
        stencil_by_name("31pt")


def test_duplicate_offsets_rejected():
    with pytest.raises(ValueError):
        Stencil("bad", ((0, 0), (0, 0)), (1.0, 2.0))


def test_mixed_arity_rejected():
    with pytest.raises(ValueError):
        Stencil("bad", ((0, 0), (0, 0, 0)), (1.0, 2.0))


def test_asymmetric_detected():
    st = Stencil("asym", ((0,), (1,)), (1.0, -1.0))
    assert not st.is_symmetric()


def test_custom_weights_reach():
    st = Stencil("wide", ((0,), (2,), (-2,)), (2.0, -1.0, -1.0))
    assert st.reach == 2
    assert st.is_symmetric()
