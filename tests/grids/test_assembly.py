"""Unit tests for stencil assembly."""

import numpy as np
import pytest

from repro.grids.assembly import assemble_csr
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import box9_2d, box27_3d, star5_2d, star7_3d


def test_interior_row_has_full_stencil():
    g = StructuredGrid((5, 5))
    A = assemble_csr(g, box9_2d())
    center = g.index((2, 2))
    cols, vals = A.row(center)
    assert len(cols) == 9
    assert vals.sum() == 0.0  # zero row sum for interior Laplacian


def test_corner_row_truncated():
    g = StructuredGrid((5, 5))
    A = assemble_csr(g, box9_2d())
    cols, vals = A.row(g.index((0, 0)))
    assert len(cols) == 4  # self + 3 in-range neighbors


def test_symmetry():
    g = StructuredGrid((4, 4, 4))
    A = assemble_csr(g, box27_3d())
    dense = A.to_dense()
    assert np.array_equal(dense, dense.T)


def test_diagonal_dominance_5pt():
    g = StructuredGrid((6, 6))
    A = assemble_csr(g, star5_2d())
    dense = A.to_dense()
    diag = np.abs(np.diag(dense))
    off = np.abs(dense).sum(axis=1) - diag
    assert np.all(diag >= off)
    # Strict dominance on boundary rows makes the operator SPD.
    assert np.any(diag > off)


def test_spd():
    g = StructuredGrid((4, 4))
    A = assemble_csr(g, star5_2d()).to_dense()
    eigs = np.linalg.eigvalsh(A)
    assert eigs.min() > 0


def test_nnz_count_7pt():
    g = StructuredGrid((4, 4, 4))
    A = assemble_csr(g, star7_3d())
    # n*7 minus truncated links: each of 3 axes drops 2*(n/dim) faces.
    expected = 64 * 7 - 2 * 3 * 16
    assert A.nnz == expected


def test_dimension_mismatch_rejected():
    with pytest.raises(ValueError):
        assemble_csr(StructuredGrid((4, 4)), star7_3d())


def test_float32_assembly():
    g = StructuredGrid((4, 4))
    A = assemble_csr(g, star5_2d(), dtype=np.float32)
    assert A.data.dtype == np.float32


def test_matches_kron_laplacian():
    """5-point operator equals the Kronecker-sum Laplacian."""
    n = 5
    g = StructuredGrid((n, n))
    A = assemble_csr(g, star5_2d()).to_dense()
    T = (np.diag(np.full(n, 2.0)) + np.diag(np.full(n - 1, -1.0), 1)
         + np.diag(np.full(n - 1, -1.0), -1))
    expect = np.kron(np.eye(n), T) + np.kron(T, np.eye(n))
    assert np.allclose(A, expect)
