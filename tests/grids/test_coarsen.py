"""Unit tests for grid coarsening."""

import numpy as np
import pytest

from repro.grids.coarsen import (
    coarsen_grid,
    fine_to_coarse_map,
    max_coarsen_levels,
)
from repro.grids.grid import StructuredGrid


def test_coarsen_halves_dims():
    g = StructuredGrid((8, 8, 8))
    c = coarsen_grid(g)
    assert c.dims == (4, 4, 4)


def test_coarsen_requires_divisibility():
    with pytest.raises(ValueError):
        coarsen_grid(StructuredGrid((7, 8)))


def test_f2c_injects_even_points():
    fine = StructuredGrid((4, 4))
    coarse = coarsen_grid(fine)
    f2c = fine_to_coarse_map(fine, coarse)
    # Coarse point (i,j) maps to fine (2i, 2j).
    for ic in range(coarse.n_points):
        cc = coarse.coord(ic)
        assert f2c[ic] == fine.index(tuple(2 * c for c in cc))


def test_f2c_unique():
    fine = StructuredGrid((8, 8))
    coarse = coarsen_grid(fine)
    f2c = fine_to_coarse_map(fine, coarse)
    assert len(np.unique(f2c)) == coarse.n_points


def test_f2c_rejects_unrelated_grids():
    with pytest.raises(ValueError):
        fine_to_coarse_map(StructuredGrid((8, 8)), StructuredGrid((3, 3)))


def test_max_coarsen_levels():
    assert max_coarsen_levels(StructuredGrid((16, 16))) == 3
    assert max_coarsen_levels(StructuredGrid((16, 12))) == 2  # 8,6 -> 4,3 stops
    assert max_coarsen_levels(StructuredGrid((3, 3))) == 0
