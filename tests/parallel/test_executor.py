"""Tests for thread-parallel color-scheduled execution."""

import numpy as np
import pytest

from repro.formats.dbsr import DBSRMatrix
from repro.kernels.sptrsv_csr import split_triangular, sptrsv_csr, \
    sptrsv_csr_upper
from repro.parallel.executor import (
    ColorParallelExecutor,
    sptrsv_dbsr_lower_parallel,
    sptrsv_dbsr_upper_parallel,
)


@pytest.fixture(scope="module")
def setup(request):
    from repro.grids.problems import poisson_problem
    from repro.ordering.vbmc import build_vbmc

    p = poisson_problem((8, 8, 8), "27pt")
    vb = build_vbmc(p.grid, p.stencil, (2, 2, 2), 4)
    csr = vb.apply_matrix(p.matrix)
    L, D, U = split_triangular(csr)
    return (vb, L, D, U, DBSRMatrix.from_csr(L, 4),
            DBSRMatrix.from_csr(U, 4))


def test_parallel_lower_bit_identical(setup, rng):
    vb, L, D, U, Ld, Ud = setup
    b = rng.standard_normal(L.n_rows)
    ref = sptrsv_csr(L, D, b)
    for workers in (1, 2, 4):
        got = sptrsv_dbsr_lower_parallel(Ld, b, vb.schedule, diag=D,
                                         n_workers=workers)
        assert np.allclose(got, ref), workers


def test_parallel_upper_bit_identical(setup, rng):
    vb, L, D, U, Ld, Ud = setup
    b = rng.standard_normal(U.n_rows)
    ref = sptrsv_csr_upper(U, D, b)
    got = sptrsv_dbsr_upper_parallel(Ud, b, vb.schedule, diag=D,
                                     n_workers=4)
    assert np.allclose(got, ref)


def test_repeated_runs_deterministic(setup, rng):
    vb, L, D, U, Ld, Ud = setup
    b = rng.standard_normal(L.n_rows)
    runs = [sptrsv_dbsr_lower_parallel(Ld, b, vb.schedule, diag=D,
                                       n_workers=4)
            for _ in range(3)]
    assert np.array_equal(runs[0], runs[1])
    assert np.array_equal(runs[1], runs[2])


def test_executor_color_barrier_ordering(setup):
    """Tasks of color c+1 never start before all of color c finish."""
    vb = setup[0]
    events = []
    import threading

    lock = threading.Lock()

    def task(group):
        sched = vb.schedule
        color = int(np.searchsorted(sched.color_group_ptr, group,
                                    side="right")) - 1
        with lock:
            events.append(color)

    with ColorParallelExecutor(vb.schedule, n_workers=4) as ex:
        ex.run_forward(task)
    assert events == sorted(events)
    with ColorParallelExecutor(vb.schedule, n_workers=4) as ex:
        events.clear()
        ex.run_backward(task)
    assert events == sorted(events, reverse=True)


def test_executor_propagates_exceptions(setup):
    vb = setup[0]

    def bad(group):
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        with ColorParallelExecutor(vb.schedule, n_workers=2) as ex:
            ex.run_forward(bad)


def test_schedule_mismatch_rejected(setup, rng):
    vb, L, D, U, Ld, Ud = setup
    from repro.ordering.vbmc import ColorSchedule

    bad = ColorSchedule(bsize=8, points_per_block=2,
                        color_group_ptr=np.array([0, 1]))
    with pytest.raises(ValueError):
        sptrsv_dbsr_lower_parallel(Ld, rng.standard_normal(L.n_rows),
                                   bad, diag=D)
