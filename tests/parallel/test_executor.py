"""Tests for thread-parallel color-scheduled execution."""

import numpy as np
import pytest

from repro.formats.dbsr import DBSRMatrix
from repro.kernels.sptrsv_csr import split_triangular, sptrsv_csr, \
    sptrsv_csr_upper
from repro.parallel.executor import (
    ColorParallelExecutor,
    sptrsv_dbsr_lower_parallel,
    sptrsv_dbsr_upper_parallel,
)


@pytest.fixture(scope="module")
def setup(request):
    from repro.grids.problems import poisson_problem
    from repro.ordering.vbmc import build_vbmc

    p = poisson_problem((8, 8, 8), "27pt")
    vb = build_vbmc(p.grid, p.stencil, (2, 2, 2), 4)
    csr = vb.apply_matrix(p.matrix)
    L, D, U = split_triangular(csr)
    return (vb, L, D, U, DBSRMatrix.from_csr(L, 4),
            DBSRMatrix.from_csr(U, 4))


def test_parallel_lower_bit_identical(setup, rng):
    vb, L, D, U, Ld, Ud = setup
    b = rng.standard_normal(L.n_rows)
    ref = sptrsv_csr(L, D, b)
    for workers in (1, 2, 4):
        got = sptrsv_dbsr_lower_parallel(Ld, b, vb.schedule, diag=D,
                                         n_workers=workers)
        assert np.allclose(got, ref), workers


def test_parallel_upper_bit_identical(setup, rng):
    vb, L, D, U, Ld, Ud = setup
    b = rng.standard_normal(U.n_rows)
    ref = sptrsv_csr_upper(U, D, b)
    got = sptrsv_dbsr_upper_parallel(Ud, b, vb.schedule, diag=D,
                                     n_workers=4)
    assert np.allclose(got, ref)


def test_repeated_runs_deterministic(setup, rng):
    vb, L, D, U, Ld, Ud = setup
    b = rng.standard_normal(L.n_rows)
    runs = [sptrsv_dbsr_lower_parallel(Ld, b, vb.schedule, diag=D,
                                       n_workers=4)
            for _ in range(3)]
    assert np.array_equal(runs[0], runs[1])
    assert np.array_equal(runs[1], runs[2])


def test_executor_color_barrier_ordering(setup):
    """Tasks of color c+1 never start before all of color c finish."""
    vb = setup[0]
    events = []
    import threading

    lock = threading.Lock()

    def task(group):
        sched = vb.schedule
        color = int(np.searchsorted(sched.color_group_ptr, group,
                                    side="right")) - 1
        with lock:
            events.append(color)

    with ColorParallelExecutor(vb.schedule, n_workers=4) as ex:
        ex.run_forward(task)
    assert events == sorted(events)
    with ColorParallelExecutor(vb.schedule, n_workers=4) as ex:
        events.clear()
        ex.run_backward(task)
    assert events == sorted(events, reverse=True)


def test_executor_propagates_exceptions(setup):
    vb = setup[0]

    def bad(group):
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError):
        with ColorParallelExecutor(vb.schedule, n_workers=2) as ex:
            ex.run_forward(bad)


def test_schedule_mismatch_rejected(setup, rng):
    vb, L, D, U, Ld, Ud = setup
    from repro.ordering.vbmc import ColorSchedule

    bad = ColorSchedule(bsize=8, points_per_block=2,
                        color_group_ptr=np.array([0, 1]))
    with pytest.raises(ValueError):
        sptrsv_dbsr_lower_parallel(Ld, rng.standard_normal(L.n_rows),
                                   bad, diag=D)


# Failure propagation ------------------------------------------------------

def test_failure_cancels_pending_work():
    """On a task exception, queued futures are cancelled and the error
    surfaces promptly instead of draining the remaining color."""
    import threading

    from repro.ordering.vbmc import ColorSchedule

    # One color, 16 independent groups.
    wide = ColorSchedule(bsize=1, points_per_block=1,
                         color_group_ptr=np.array([0, 16]))
    ran = []
    lock = threading.Lock()

    def bad(group):
        with lock:
            ran.append(group)
        if group == 0:
            raise RuntimeError("boom")

    # One worker: the failing first task is running while the rest of
    # the color is still queued; those must be cancelled, not run.
    with ColorParallelExecutor(wide, n_workers=1) as ex:
        with pytest.raises(RuntimeError, match="boom"):
            ex.run_forward(bad)
    assert len(ran) < 16


def test_pool_left_usable_after_failure(setup):
    vb = setup[0]

    def bad(group):
        raise RuntimeError("boom")

    seen = []
    with ColorParallelExecutor(vb.schedule, n_workers=2) as ex:
        with pytest.raises(RuntimeError):
            ex.run_forward(bad)
        ex.run_forward(seen.append)  # pool still drains work
    assert len(seen) == vb.schedule.n_groups


# Shared-pool reuse --------------------------------------------------------

def test_external_pool_is_reused_not_owned(setup):
    from concurrent.futures import ThreadPoolExecutor

    from repro.parallel.executor import pool_stats

    vb = setup[0]
    pool = ThreadPoolExecutor(max_workers=2)
    try:
        before = pool_stats.created
        seen = []
        with ColorParallelExecutor(vb.schedule, pool=pool) as ex:
            ex.run_forward(seen.append)
        assert pool_stats.created == before  # no new pool constructed
        # shutdown() must not have closed the external pool:
        assert pool.submit(lambda: 42).result() == 42
        assert len(seen) == vb.schedule.n_groups
    finally:
        pool.shutdown(wait=True)


def test_own_pool_creation_is_instrumented(setup):
    from repro.parallel.executor import pool_stats

    vb = setup[0]
    before = pool_stats.created
    with ColorParallelExecutor(vb.schedule, n_workers=2):
        pass
    assert pool_stats.created == before + 1


# Bit-identical determinism across grids/bsizes/worker counts --------------

def _tri_setup(dims, stencil, block_dims, bsize):
    from repro.grids.problems import poisson_problem
    from repro.ordering.vbmc import build_vbmc

    p = poisson_problem(dims, stencil)
    vb = build_vbmc(p.grid, p.stencil, block_dims, bsize)
    csr = vb.apply_matrix(p.matrix)
    L, D, U = split_triangular(csr)
    return (vb, D, DBSRMatrix.from_csr(L, bsize),
            DBSRMatrix.from_csr(U, bsize))


@pytest.mark.fast
@pytest.mark.parametrize("dims,stencil,block_dims,bsize", [
    ((8, 8, 8), "27pt", (2, 2, 2), 4),
    ((8, 8, 8), "7pt", (2, 2, 2), 2),
    ((8, 8), "9pt", (4, 4), 4),
])
def test_parallel_bit_identical_sweep(dims, stencil, block_dims, bsize,
                                      rng):
    """Exact (bit-level) equality with the sequential DBSR kernels for
    every worker count, repeated to catch ordering races."""
    from repro.kernels.sptrsv_dbsr import (
        sptrsv_dbsr_lower,
        sptrsv_dbsr_upper,
    )

    vb, D, Ld, Ud = _tri_setup(dims, stencil, block_dims, bsize)
    b = rng.standard_normal(Ld.n_rows)
    ref_lo = sptrsv_dbsr_lower(Ld, b, diag=D)
    ref_up = sptrsv_dbsr_upper(Ud, b, diag=D)
    for workers in (1, 2, 4):
        for _ in range(3):
            got_lo = sptrsv_dbsr_lower_parallel(
                Ld, b, vb.schedule, diag=D, n_workers=workers)
            got_up = sptrsv_dbsr_upper_parallel(
                Ud, b, vb.schedule, diag=D, n_workers=workers)
            assert np.array_equal(got_lo, ref_lo), (workers, "lower")
            assert np.array_equal(got_up, ref_up), (workers, "upper")


# Parallel-path op accounting ----------------------------------------------

def test_parallel_counter_matches_closed_form(setup, rng):
    """The per-group tallies merged at color barriers reproduce the
    closed-form Algorithm 2 counts exactly."""
    from dataclasses import fields

    from repro.kernels.counts import sptrsv_dbsr_counts
    from repro.simd.counters import OpCounter

    vb, L, D, U, Ld, Ud = setup
    b = rng.standard_normal(L.n_rows)
    for dbsr, fn in ((Ld, sptrsv_dbsr_lower_parallel),
                     (Ud, sptrsv_dbsr_upper_parallel)):
        c = OpCounter(bsize=dbsr.bsize)
        fn(dbsr, b, vb.schedule, diag=D, n_workers=4, counter=c)
        expect = sptrsv_dbsr_counts(dbsr, divide=True)
        for f in fields(OpCounter):
            assert getattr(c, f.name) == getattr(expect, f.name), f.name


def test_parallel_counter_is_deterministic(setup, rng):
    """Counter totals are identical run to run and across thread
    counts (merge order cannot leak into the tallies)."""
    from repro.simd.counters import OpCounter

    vb, L, D, U, Ld, Ud = setup
    b = rng.standard_normal(L.n_rows)
    totals = set()
    for workers in (1, 2, 4):
        for _ in range(2):
            c = OpCounter(bsize=Ld.bsize)
            sptrsv_dbsr_lower_parallel(Ld, b, vb.schedule, diag=D,
                                       n_workers=workers, counter=c)
            totals.add((c.vload, c.vfma, c.vstore, c.vdiv,
                        c.total_bytes))
    assert len(totals) == 1
