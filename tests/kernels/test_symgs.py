"""Unit tests for Gauss-Seidel / SYMGS smoothers."""

import numpy as np

from repro.kernels.symgs import (
    gs_backward_csr,
    gs_forward_csr,
    gs_forward_dbsr,
    symgs_csr,
    symgs_dbsr,
)


def test_gs_forward_reduces_residual(problem_2d, rng):
    A = problem_2d.matrix
    b = problem_2d.rhs
    x = np.zeros(problem_2d.n)
    r0 = np.linalg.norm(b - A.matvec(x))
    gs_forward_csr(A, A.diagonal(), x, b)
    assert np.linalg.norm(b - A.matvec(x)) < r0


def test_symgs_converges_to_solution(problem_2d):
    A = problem_2d.matrix
    b = problem_2d.rhs
    x = np.zeros(problem_2d.n)
    for _ in range(200):
        symgs_csr(A, A.diagonal(), x, b)
    assert np.allclose(x, problem_2d.exact, atol=1e-6)


def test_gs_exact_on_triangular_system(random_sparse, rng):
    """GS solves a lower-triangular system in one forward sweep."""
    A = random_sparse(n=12, seed=21)
    L_dense = np.tril(A.to_dense())
    from repro.formats.csr import CSRMatrix

    L = CSRMatrix.from_dense(L_dense)
    b = rng.standard_normal(12)
    x = np.zeros(12)
    gs_forward_csr(L, L.diagonal(), x, b)
    assert np.allclose(L_dense @ x, b)


def test_symgs_dbsr_matches_csr(reordered_2d, rng):
    csr, dbsr = reordered_2d
    diag = csr.diagonal()
    b = rng.standard_normal(csr.n_rows)
    x1 = rng.standard_normal(csr.n_rows)
    x2 = x1.copy()
    symgs_csr(csr, diag, x1, b)
    symgs_dbsr(dbsr, diag, x2, b)
    assert np.allclose(x1, x2)


def test_symgs_dbsr_matches_csr_3d(reordered_3d, rng):
    csr, dbsr = reordered_3d
    diag = csr.diagonal()
    b = rng.standard_normal(csr.n_rows)
    x1 = np.zeros(csr.n_rows)
    x2 = np.zeros(csr.n_rows)
    for _ in range(3):  # multiple sweeps stay in lockstep
        symgs_csr(csr, diag, x1, b)
        symgs_dbsr(dbsr, diag, x2, b)
        assert np.allclose(x1, x2)


def test_gs_forward_dbsr_matches_csr(reordered_2d, rng):
    csr, dbsr = reordered_2d
    diag = csr.diagonal()
    b = rng.standard_normal(csr.n_rows)
    x1 = np.zeros(csr.n_rows)
    x2 = np.zeros(csr.n_rows)
    gs_forward_csr(csr, diag, x1, b)
    gs_forward_dbsr(dbsr, diag, x2, b)
    assert np.allclose(x1, x2)


def test_backward_then_forward_is_symmetric_smoother(problem_2d, rng):
    """SYMGS error propagation matrix is symmetric in the A-inner
    product; spot check via residual monotonicity."""
    A = problem_2d.matrix
    b = problem_2d.rhs
    x = rng.standard_normal(problem_2d.n)
    prev = np.linalg.norm(b - A.matvec(x))
    for _ in range(5):
        symgs_csr(A, A.diagonal(), x, b)
        cur = np.linalg.norm(b - A.matvec(x))
        assert cur <= prev * 1.0001
        prev = cur


def test_fixed_point_is_solution(problem_2d):
    """SYMGS leaves the exact solution unchanged."""
    A = problem_2d.matrix
    x = problem_2d.exact.copy()
    symgs_csr(A, A.diagonal(), x, problem_2d.rhs)
    assert np.allclose(x, problem_2d.exact)
