"""Unit tests for SpMV kernels and their instrumented twins."""

import numpy as np

from repro.formats.sell import SELLMatrix
from repro.kernels.spmv import (
    spmv,
    spmv_csr_counted,
    spmv_dbsr_counted,
    spmv_sell_counted,
)
from repro.simd.engine import VectorEngine


def test_spmv_dispatch(problem_2d, rng):
    x = rng.standard_normal(problem_2d.n)
    assert np.allclose(spmv(problem_2d.matrix, x),
                       problem_2d.matrix.matvec(x))


def test_csr_counted_matches(problem_2d, rng):
    A = problem_2d.matrix
    x = rng.standard_normal(A.n_cols)
    eng = VectorEngine(1)
    y = spmv_csr_counted(A, x, eng)
    assert np.allclose(y, A.matvec(x))
    c = eng.counter
    assert c.sflop == 2 * A.nnz
    assert c.bytes_values == A.nnz * 8
    assert c.bytes_gathered == A.nnz * 8


def test_csr_counts_match_closed_form(problem_2d, rng):
    from repro.kernels.counts import spmv_csr_counts

    A = problem_2d.matrix
    eng = VectorEngine(1)
    spmv_csr_counted(A, rng.standard_normal(A.n_cols), eng)
    expect = spmv_csr_counts(A)
    assert eng.counter.sflop == expect.sflop
    assert eng.counter.bytes_values == expect.bytes_values
    assert eng.counter.bytes_gathered == expect.bytes_gathered


def test_sell_counted_matches(problem_2d, rng):
    A = problem_2d.matrix
    sell = SELLMatrix(A, chunk=4, sigma=1)
    x = rng.standard_normal(A.n_cols)
    eng = VectorEngine(4)
    y = spmv_sell_counted(sell, x, eng)
    assert np.allclose(y, A.matvec(x))
    assert eng.counter.vgather > 0  # SELL must gather


def test_dbsr_counted_matches(reordered_2d, rng):
    csr, dbsr = reordered_2d
    x = rng.standard_normal(csr.n_cols)
    eng = VectorEngine(dbsr.bsize)
    y = spmv_dbsr_counted(dbsr, x, eng)
    assert np.allclose(y, csr.matvec(x))
    assert eng.counter.vgather == 0  # DBSR never gathers
    assert eng.counter.vfma == dbsr.n_tiles


def test_dbsr_spmv_counts_match_closed_form(reordered_2d, rng):
    from repro.kernels.counts import spmv_dbsr_counts

    csr, dbsr = reordered_2d
    eng = VectorEngine(dbsr.bsize)
    spmv_dbsr_counted(dbsr, rng.standard_normal(csr.n_cols), eng)
    expect = spmv_dbsr_counts(dbsr)
    assert eng.counter.vload == expect.vload
    assert eng.counter.vfma == expect.vfma
    assert eng.counter.vstore == expect.vstore
    assert eng.counter.bytes_values == expect.bytes_values
