"""Unit tests for level-scheduled SpTRSV."""

import numpy as np

from repro.kernels.sptrsv_csr import split_triangular, sptrsv_csr
from repro.kernels.sptrsv_level import build_levels, sptrsv_levels


def test_levels_partition_rows(random_sparse):
    A = random_sparse(n=24, seed=11)
    L, _, _ = split_triangular(A)
    levels = build_levels(L)
    flat = np.concatenate(levels)
    assert sorted(flat.tolist()) == list(range(24))


def test_levels_respect_dependencies(random_sparse):
    A = random_sparse(n=24, seed=12)
    L, _, _ = split_triangular(A)
    levels = build_levels(L)
    rank = np.empty(24, dtype=int)
    for k, rows in enumerate(levels):
        rank[rows] = k
    rows = np.repeat(np.arange(24), np.diff(L.indptr))
    assert np.all(rank[L.indices] < rank[rows])


def test_level_solve_matches_serial(random_sparse, rng):
    A = random_sparse(n=24, seed=13)
    L, D, _ = split_triangular(A)
    b = rng.standard_normal(24)
    assert np.allclose(sptrsv_levels(L, D, b), sptrsv_csr(L, D, b))


def test_level_solve_unit_diag(random_sparse, rng):
    A = random_sparse(n=16, seed=14)
    L, D, _ = split_triangular(A)
    b = rng.standard_normal(16)
    assert np.allclose(sptrsv_levels(L, D, b, unit_diag=True),
                       sptrsv_csr(L, D, b, unit_diag=True))


def test_chain_has_n_levels():
    from repro.formats.csr import CSRMatrix

    n = 6
    dense = np.diag(np.ones(n - 1), -1)
    L = CSRMatrix.from_dense(dense)
    assert len(build_levels(L)) == n


def test_diagonal_matrix_single_level():
    from repro.formats.csr import CSRMatrix

    L = CSRMatrix([0] * 9, [], [], (8, 8))
    levels = build_levels(L)
    assert len(levels) == 1
    assert len(levels[0]) == 8


def test_lexicographic_grid_has_many_levels(problem_2d_5pt):
    """On a lexicographically ordered grid, level count ~ grid
    diameter — the poor-parallelism motivation for reordering."""
    L, _, _ = split_triangular(problem_2d_5pt.matrix)
    levels = build_levels(L)
    assert len(levels) >= 8 + 8 - 1  # nx + ny - 1 wavefronts
