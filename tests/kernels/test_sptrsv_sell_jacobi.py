"""Tests for SELL triangular solves, ELL format, and Jacobi/SOR."""

import numpy as np
import pytest

from repro.formats.ell import ELLMatrix
from repro.formats.sell import SELLMatrix
from repro.kernels.jacobi import jacobi_sweep, sor_forward_sweep, \
    ssor_sweep
from repro.kernels.sptrsv_csr import (
    split_triangular,
    sptrsv_csr,
    sptrsv_csr_upper,
)
from repro.kernels.sptrsv_sell import sptrsv_sell_lower, \
    sptrsv_sell_upper
from repro.simd.engine import VectorEngine


@pytest.fixture(scope="module")
def tri_sell(request):
    csr, dbsr = request.getfixturevalue("reordered_3d")
    L, D, U = split_triangular(csr)
    return (L, D, U,
            SELLMatrix(L, chunk=dbsr.bsize, sigma=1),
            SELLMatrix(U, chunk=dbsr.bsize, sigma=1))


def test_sell_lower_matches_csr(tri_sell, rng):
    L, D, U, Ls, Us = tri_sell
    b = rng.standard_normal(L.n_rows)
    assert np.allclose(sptrsv_sell_lower(Ls, b, diag=D),
                       sptrsv_csr(L, D, b))


def test_sell_upper_matches_csr(tri_sell, rng):
    L, D, U, Ls, Us = tri_sell
    b = rng.standard_normal(U.n_rows)
    assert np.allclose(sptrsv_sell_upper(Us, b, diag=D),
                       sptrsv_csr_upper(U, D, b))


def test_sell_unit_diag(tri_sell, rng):
    L, D, U, Ls, Us = tri_sell
    b = rng.standard_normal(L.n_rows)
    assert np.allclose(sptrsv_sell_lower(Ls, b),
                       sptrsv_csr(L, D, b, unit_diag=True))


def test_sell_solve_gathers(tri_sell, rng):
    """SELL triangular solves must gather; DBSR must not — the Fig. 8
    dichotomy at kernel level."""
    L, D, U, Ls, Us = tri_sell
    b = rng.standard_normal(L.n_rows)
    eng = VectorEngine(Ls.chunk)
    x = sptrsv_sell_lower(Ls, b, diag=D, engine=eng)
    assert np.allclose(x, sptrsv_csr(L, D, b))
    assert eng.counter.vgather > 0


def test_sell_sigma_sorted_rejected(tri_sell, rng):
    L, D, U, Ls, Us = tri_sell
    sorted_sell = SELLMatrix(L, chunk=4, sigma=8)
    with pytest.raises(ValueError):
        sptrsv_sell_lower(sorted_sell, np.zeros(L.n_rows))


# --- ELL ------------------------------------------------------------------

def test_ell_roundtrip(problem_2d):
    ell = ELLMatrix(problem_2d.matrix)
    assert np.allclose(ell.to_dense(), problem_2d.matrix.to_dense())


def test_ell_matvec(problem_2d, rng):
    ell = ELLMatrix(problem_2d.matrix)
    x = rng.standard_normal(problem_2d.n)
    assert np.allclose(ell.matvec(x), problem_2d.matrix.matvec(x))


def test_ell_pads_more_than_sell(problem_2d):
    """The SELL improvement: per-chunk widths beat one global width on
    boundary-ragged rows."""
    ell = ELLMatrix(problem_2d.matrix)
    sell = SELLMatrix(problem_2d.matrix, chunk=4, sigma=1)
    assert ell.padding_fraction() >= sell.padding_fraction()
    assert ell.memory_report().padding_values >= \
        sell.memory_report().padding_values


# --- Jacobi / SOR -----------------------------------------------------------

def test_jacobi_converges_but_slower_than_gs(problem_2d):
    from repro.kernels.symgs import gs_forward_csr

    A = problem_2d.matrix
    diag = A.diagonal()
    b = problem_2d.rhs
    xj = np.zeros(problem_2d.n)
    xg = np.zeros(problem_2d.n)
    for _ in range(30):
        jacobi_sweep(A, diag, xj, b, weight=0.8)
        gs_forward_csr(A, diag, xg, b)
    rj = np.linalg.norm(b - A.matvec(xj))
    rg = np.linalg.norm(b - A.matvec(xg))
    assert rg < rj  # GS converges faster per sweep
    assert rj < np.linalg.norm(b)  # but Jacobi does converge


def test_sor_omega_one_is_gs(problem_2d, rng):
    from repro.kernels.symgs import gs_forward_csr

    A = problem_2d.matrix
    diag = A.diagonal()
    b = rng.standard_normal(problem_2d.n)
    x1 = np.zeros(problem_2d.n)
    x2 = np.zeros(problem_2d.n)
    sor_forward_sweep(A, diag, x1, b, omega=1.0)
    gs_forward_csr(A, diag, x2, b)
    assert np.allclose(x1, x2)


def test_ssor_omega_one_is_symgs(problem_2d, rng):
    from repro.kernels.symgs import symgs_csr

    A = problem_2d.matrix
    diag = A.diagonal()
    b = rng.standard_normal(problem_2d.n)
    x1 = np.zeros(problem_2d.n)
    x2 = np.zeros(problem_2d.n)
    ssor_sweep(A, diag, x1, b, omega=1.0)
    symgs_csr(A, diag, x2, b)
    assert np.allclose(x1, x2)


def test_overrelaxation_accelerates_poisson(problem_2d):
    """Optimal SOR converges faster than GS on the model problem."""
    A = problem_2d.matrix
    diag = A.diagonal()
    b = problem_2d.rhs
    res = {}
    for omega in (1.0, 1.5):
        x = np.zeros(problem_2d.n)
        for _ in range(40):
            sor_forward_sweep(A, diag, x, b, omega=omega)
        res[omega] = np.linalg.norm(b - A.matvec(x))
    assert res[1.5] < res[1.0]


def test_sor_omega_range_enforced(problem_2d):
    A = problem_2d.matrix
    with pytest.raises(ValueError):
        sor_forward_sweep(A, A.diagonal(), np.zeros(problem_2d.n),
                          np.zeros(problem_2d.n), omega=2.5)
