"""Unit tests for CSR SpTRSV (Algorithm 1)."""

import numpy as np
import pytest

from repro.kernels.sptrsv_csr import (
    split_triangular,
    sptrsv_csr,
    sptrsv_csr_upper,
)


def test_lower_solve_matches_numpy(random_sparse, rng):
    A = random_sparse(n=20, seed=1)
    L, D, U = split_triangular(A)
    b = rng.standard_normal(20)
    x = sptrsv_csr(L, D, b)
    dense = L.to_dense() + np.diag(D)
    assert np.allclose(dense @ x, b)


def test_upper_solve_matches_numpy(random_sparse, rng):
    A = random_sparse(n=20, seed=2)
    L, D, U = split_triangular(A)
    b = rng.standard_normal(20)
    x = sptrsv_csr_upper(U, D, b)
    dense = U.to_dense() + np.diag(D)
    assert np.allclose(dense @ x, b)


def test_unit_diag_solve(random_sparse, rng):
    A = random_sparse(n=16, seed=3)
    L, D, _ = split_triangular(A)
    b = rng.standard_normal(16)
    x = sptrsv_csr(L, D, b, unit_diag=True)
    dense = L.to_dense() + np.eye(16)
    assert np.allclose(dense @ x, b)


def test_identity_solve():
    from repro.formats.csr import CSRMatrix

    L = CSRMatrix([0] * 5, [], [], (4, 4))
    x = sptrsv_csr(L, np.full(4, 2.0), np.ones(4))
    assert np.allclose(x, 0.5)


def test_rejects_non_strictly_lower(random_sparse):
    A = random_sparse(n=8, seed=4)
    with pytest.raises(ValueError):
        sptrsv_csr(A, A.diagonal(), np.ones(8))


def test_rejects_non_strictly_upper(random_sparse):
    A = random_sparse(n=8, seed=5)
    with pytest.raises(ValueError):
        sptrsv_csr_upper(A, A.diagonal(), np.ones(8))


def test_bidiagonal_chain():
    """Sequential dependency: x[i] depends on x[i-1] (the low
    parallelism the paper's §II-B describes)."""
    from repro.formats.csr import CSRMatrix

    n = 10
    dense = np.diag(np.ones(n - 1) * -1.0, -1)
    L = CSRMatrix.from_dense(dense)
    x = sptrsv_csr(L, np.ones(n), np.ones(n))
    # Recurrence x[i] = 1 + x[i-1] -> x[i] = i+1.
    assert np.allclose(x, np.arange(1.0, n + 1))


def test_wrong_b_length_rejected(random_sparse):
    A = random_sparse(n=8, seed=6)
    L, D, _ = split_triangular(A)
    with pytest.raises(ValueError):
        sptrsv_csr(L, D, np.ones(9))
