"""Tests for the SELL SYMGS kernel and the instrumented SYMGS twins."""

import numpy as np
import pytest

from repro.formats.sell import SELLMatrix
from repro.kernels.counts import symgs_dbsr_counts
from repro.kernels.symgs import symgs_csr, symgs_dbsr
from repro.kernels.symgs_counted import symgs_dbsr_counted
from repro.kernels.symgs_sell import symgs_sell, symgs_sell_counted
from repro.simd.engine import VectorEngine


@pytest.fixture(scope="module")
def setup(request):
    pair = request.getfixturevalue("reordered_3d")
    csr, dbsr = pair
    sell = SELLMatrix(csr, chunk=dbsr.bsize, sigma=1)
    return csr, dbsr, sell


def test_symgs_sell_matches_csr(setup, rng):
    csr, dbsr, sell = setup
    diag = csr.diagonal()
    b = rng.standard_normal(csr.n_rows)
    x1 = np.zeros(csr.n_rows)
    x2 = np.zeros(csr.n_rows)
    for _ in range(3):
        symgs_csr(csr, diag, x1, b)
        symgs_sell(sell, diag, x2, b)
        assert np.allclose(x1, x2)


def test_symgs_sell_matches_dbsr(setup, rng):
    csr, dbsr, sell = setup
    diag = csr.diagonal()
    b = rng.standard_normal(csr.n_rows)
    x1 = np.zeros(csr.n_rows)
    x2 = np.zeros(csr.n_rows)
    symgs_dbsr(dbsr, diag, x1, b)
    symgs_sell(sell, diag, x2, b)
    assert np.allclose(x1, x2)


def test_symgs_sell_rejects_sigma_sorted(setup, rng):
    csr, dbsr, sell = setup
    sorted_sell = SELLMatrix(csr, chunk=dbsr.bsize,
                             sigma=4 * dbsr.bsize)
    with pytest.raises(ValueError):
        symgs_sell(sorted_sell, csr.diagonal(),
                   np.zeros(csr.n_rows), np.zeros(csr.n_rows))


def test_symgs_sell_counted_matches_and_gathers(setup, rng):
    csr, dbsr, sell = setup
    diag = csr.diagonal()
    b = rng.standard_normal(csr.n_rows)
    x1 = np.zeros(csr.n_rows)
    x2 = np.zeros(csr.n_rows)
    symgs_sell(sell, diag, x1, b)
    eng = VectorEngine(sell.chunk)
    symgs_sell_counted(sell, diag, x2, b, eng)
    assert np.allclose(x1, x2)
    assert eng.counter.vgather > 0
    assert eng.counter.bytes_gathered > 0


def test_symgs_dbsr_counted_matches_fast_twin(setup, rng):
    csr, dbsr, sell = setup
    diag = csr.diagonal()
    b = rng.standard_normal(csr.n_rows)
    x1 = np.zeros(csr.n_rows)
    x2 = np.zeros(csr.n_rows)
    symgs_dbsr(dbsr, diag, x1, b)
    eng = VectorEngine(dbsr.bsize)
    symgs_dbsr_counted(dbsr, diag, x2, b, eng)
    assert np.allclose(x1, x2)


def test_symgs_dbsr_counted_matches_closed_form(setup, rng):
    csr, dbsr, sell = setup
    diag = csr.diagonal()
    b = rng.standard_normal(csr.n_rows)
    eng = VectorEngine(dbsr.bsize)
    symgs_dbsr_counted(dbsr, diag, np.zeros(csr.n_rows), b, eng)
    expect = symgs_dbsr_counts(dbsr)
    got = eng.counter
    for f in ("vload", "vstore", "vfma", "vdiv", "vadd", "vgather",
              "bytes_values", "bytes_index", "bytes_vector",
              "bytes_gathered"):
        assert getattr(got, f) == getattr(expect, f), f


def test_dbsr_symgs_traffic_below_sell(setup, rng):
    """The Fig. 8 story in counter form: DBSR moves fewer gathered
    bytes (zero) and less index data per sweep than SELL."""
    csr, dbsr, sell = setup
    diag = csr.diagonal()
    b = rng.standard_normal(csr.n_rows)
    e1 = VectorEngine(dbsr.bsize)
    symgs_dbsr_counted(dbsr, diag, np.zeros(csr.n_rows), b, e1)
    e2 = VectorEngine(sell.chunk)
    symgs_sell_counted(sell, diag, np.zeros(csr.n_rows), b, e2)
    assert e1.counter.bytes_gathered == 0
    assert e2.counter.bytes_gathered > 0
    assert e1.counter.bytes_index < e2.counter.bytes_index
