"""Tests for the CPO-style fused kernels."""

import numpy as np
import pytest

from repro.kernels.fused import (
    fused_spmv_dot,
    fused_symgs_residual,
    fused_symgs_residual_simple,
    fusion_traffic_ratio,
    fused_symgs_residual_counts,
    naive_symgs_residual_counts,
)


def test_fused_symgs_residual_matches_naive(problem_2d, rng):
    A = problem_2d.matrix
    diag = A.diagonal()
    b = rng.standard_normal(problem_2d.n)
    x1 = rng.standard_normal(problem_2d.n)
    x2 = x1.copy()
    r_fused = fused_symgs_residual(A, diag, x1, b)
    r_naive = fused_symgs_residual_simple(A, diag, x2, b)
    assert np.allclose(x1, x2)
    assert np.allclose(r_fused, r_naive)


def test_fused_symgs_residual_3d(problem_3d_27pt, rng):
    A = problem_3d_27pt.matrix
    diag = A.diagonal()
    b = rng.standard_normal(problem_3d_27pt.n)
    x1 = np.zeros(problem_3d_27pt.n)
    x2 = np.zeros(problem_3d_27pt.n)
    r1 = fused_symgs_residual(A, diag, x1, b)
    r2 = fused_symgs_residual_simple(A, diag, x2, b)
    assert np.allclose(r1, r2)


def test_fused_spmv_dot(problem_2d, rng):
    A = problem_2d.matrix
    x = rng.standard_normal(problem_2d.n)
    y, xy, yy = fused_spmv_dot(A, x)
    assert np.allclose(y, A.matvec(x))
    assert np.isclose(xy, x @ y)
    assert np.isclose(yy, y @ y)


def test_fusion_saves_traffic(problem_3d_27pt):
    fused = fused_symgs_residual_counts(problem_3d_27pt.matrix)
    naive = naive_symgs_residual_counts(problem_3d_27pt.matrix)
    assert fused.total_bytes < naive.total_bytes


def test_fusion_ratio_grounds_model_factor(problem_3d_27pt):
    """The HPCG model applies fusion_traffic_factor = 0.8 to vector
    traffic; the measured whole-kernel ratio lands in that vicinity."""
    ratio = fusion_traffic_ratio(problem_3d_27pt.matrix)
    assert 0.7 < ratio < 0.95


def test_fused_iterates_converge(problem_2d):
    """Using the fused kernel inside a smoother iteration converges to
    the exact solution like plain SYMGS."""
    A = problem_2d.matrix
    diag = A.diagonal()
    x = np.zeros(problem_2d.n)
    for _ in range(300):
        r = fused_symgs_residual(A, diag, x, problem_2d.rhs)
    assert np.allclose(x, problem_2d.exact, atol=1e-6)
    assert np.linalg.norm(r) < 1e-5
