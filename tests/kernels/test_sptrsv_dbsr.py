"""Unit tests for the DBSR SpTRSV (Algorithm 2)."""

import numpy as np
import pytest

from repro.formats.dbsr import DBSRMatrix
from repro.kernels.sptrsv_csr import (
    split_triangular,
    sptrsv_csr,
    sptrsv_csr_upper,
)
from repro.kernels.sptrsv_dbsr import (
    check_dbsr_triangular,
    sptrsv_dbsr_lower,
    sptrsv_dbsr_lower_counted,
    sptrsv_dbsr_upper,
    sptrsv_dbsr_upper_counted,
)
from repro.simd.engine import VectorEngine


@pytest.fixture(scope="module", params=["2d", "3d"])
def triangles(request, reordered_2d=None, reordered_3d=None):
    # Resolve session fixtures lazily through the request.
    pair = request.getfixturevalue(
        "reordered_2d" if request.param == "2d" else "reordered_3d")
    csr, _ = pair
    L, D, U = split_triangular(csr)
    bs = pair[1].bsize
    return (L, D, U, DBSRMatrix.from_csr(L, bs),
            DBSRMatrix.from_csr(U, bs), bs)


def test_precondition_checks(triangles):
    L, D, U, Ld, Ud, bs = triangles
    assert check_dbsr_triangular(Ld, lower=True)
    assert check_dbsr_triangular(Ud, lower=False)
    assert not check_dbsr_triangular(Ud, lower=True)


def test_lower_solve_matches_csr(triangles, rng):
    L, D, U, Ld, Ud, bs = triangles
    b = rng.standard_normal(L.n_rows)
    assert np.allclose(sptrsv_dbsr_lower(Ld, b, diag=D),
                       sptrsv_csr(L, D, b))


def test_lower_solve_unit_diag(triangles, rng):
    L, D, U, Ld, Ud, bs = triangles
    b = rng.standard_normal(L.n_rows)
    assert np.allclose(sptrsv_dbsr_lower(Ld, b),
                       sptrsv_csr(L, D, b, unit_diag=True))


def test_upper_solve_matches_csr(triangles, rng):
    L, D, U, Ld, Ud, bs = triangles
    b = rng.standard_normal(U.n_rows)
    assert np.allclose(sptrsv_dbsr_upper(Ud, b, diag=D),
                       sptrsv_csr_upper(U, D, b))


def test_counted_twins_same_result_and_counts(triangles, rng):
    from repro.kernels.counts import sptrsv_dbsr_counts

    L, D, U, Ld, Ud, bs = triangles
    b = rng.standard_normal(L.n_rows)
    eng = VectorEngine(bs)
    x = sptrsv_dbsr_lower_counted(Ld, b, eng, diag=D)
    assert np.allclose(x, sptrsv_dbsr_lower(Ld, b, diag=D))
    expect = sptrsv_dbsr_counts(Ld, divide=True)
    got = eng.counter
    for f in ("vload", "vstore", "vfma", "vdiv",
              "bytes_values", "bytes_index", "bytes_vector"):
        assert getattr(got, f) == getattr(expect, f), f


def test_counted_upper_twin(triangles, rng):
    L, D, U, Ld, Ud, bs = triangles
    b = rng.standard_normal(U.n_rows)
    eng = VectorEngine(bs)
    x = sptrsv_dbsr_upper_counted(Ud, b, eng, diag=D)
    assert np.allclose(x, sptrsv_dbsr_upper(Ud, b, diag=D))
    assert eng.counter.vgather == 0  # gather-free (§III-D)


def test_gather_free_property(triangles, rng):
    """Algorithm 2 must not issue a single gather."""
    L, D, U, Ld, Ud, bs = triangles
    eng = VectorEngine(bs)
    sptrsv_dbsr_lower_counted(Ld, rng.standard_normal(L.n_rows), eng,
                              diag=D)
    assert eng.counter.vgather == 0
    assert eng.counter.bytes_gathered == 0


def test_wrong_length_rejected(triangles):
    L, D, U, Ld, Ud, bs = triangles
    with pytest.raises(ValueError):
        sptrsv_dbsr_lower(Ld, np.ones(L.n_rows + 1))


def test_float32_solve(triangles, rng):
    L, D, U, Ld, Ud, bs = triangles
    b = rng.standard_normal(L.n_rows).astype(np.float32)
    Lf = Ld.astype(np.float32)
    x = sptrsv_dbsr_lower(Lf, b, diag=D.astype(np.float32))
    ref = sptrsv_csr(L, D, b.astype(float))
    assert np.allclose(x, ref, atol=1e-3)
