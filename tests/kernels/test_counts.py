"""Unit tests for the closed-form operation counts."""

import numpy as np

from repro.formats.sell import SELLMatrix
from repro.kernels import counts


def test_dbsr_vs_csr_index_bytes(reordered_3d):
    """DBSR's index stream shrinks toward 2/bsize of CSR's (§III-B).

    On this boundary-heavy 8-cubed test grid the ratio lands near
    0.6 with bsize 4 (ideal 0.5); larger grids approach the ideal.
    """
    csr, dbsr = reordered_3d
    c_csr = counts.sptrsv_csr_counts(csr)
    c_dbsr = counts.sptrsv_dbsr_counts(dbsr)
    assert c_dbsr.bytes_index < 0.65 * c_csr.bytes_index


def test_dbsr_no_gathered_traffic(reordered_3d):
    _, dbsr = reordered_3d
    c = counts.sptrsv_dbsr_counts(dbsr)
    assert c.bytes_gathered == 0
    assert c.vgather == 0


def test_csr_has_gathered_traffic(problem_3d_7pt):
    c = counts.sptrsv_csr_counts(problem_3d_7pt.matrix)
    assert c.bytes_gathered == problem_3d_7pt.matrix.nnz * 8


def test_sell_gathers_scale_with_width(problem_2d):
    sell = SELLMatrix(problem_2d.matrix, chunk=4, sigma=1)
    c = counts.spmv_sell_counts(sell)
    assert c.vgather == int(sell.widths.sum())
    assert c.bytes_gathered > 0


def test_symgs_counts_are_two_sweeps(reordered_3d):
    _, dbsr = reordered_3d
    one = counts.sptrsv_dbsr_counts(dbsr, divide=True)
    two = counts.symgs_dbsr_counts(dbsr)
    assert two.vfma == 2 * one.vfma
    assert two.vdiv == 2 * one.vdiv


def test_flops_accounting(reordered_3d):
    _, dbsr = reordered_3d
    c = counts.sptrsv_dbsr_counts(dbsr)
    # FMA = 2 flops x bsize lanes per tile.
    assert c.flops() >= 2 * dbsr.n_tiles * dbsr.bsize


def test_dot_and_waxpby_counts():
    d = counts.dot_counts(100)
    assert d.sflop == 200
    assert d.bytes_vector == 1600
    w = counts.waxpby_counts(100)
    assert w.sflop == 300
    assert w.sstore == 100


def test_total_value_bytes_include_padding(reordered_3d):
    _, dbsr = reordered_3d
    c = counts.sptrsv_dbsr_counts(dbsr)
    assert c.bytes_values == dbsr.n_tiles * dbsr.bsize * 8
