"""Every CLI subcommand must be documented.

Guards against the recurring drift where a new subcommand lands in
``build_parser`` but neither the module docstring's usage block nor
``docs/usage.md`` mentions it.
"""

import argparse
import os

import repro.cli as cli

DOCS = os.path.join(os.path.dirname(__file__), "..", "docs")


def _subcommands():
    parser = cli.build_parser()
    actions = [a for a in parser._actions
               if isinstance(a, argparse._SubParsersAction)]
    assert actions, "CLI has no subparsers?"
    names = sorted(actions[0].choices)
    assert names, "CLI has no subcommands?"
    return names


def test_parser_exposes_known_commands():
    names = _subcommands()
    # Spot-check the anchors; the full list may grow.
    for expected in ("hpcg", "solve", "bench-runtime", "serve-bench"):
        assert expected in names


def test_every_subcommand_in_module_docstring():
    doc = cli.__doc__ or ""
    missing = [n for n in _subcommands() if n not in doc]
    assert not missing, (
        f"subcommands absent from repro.cli docstring: {missing}")


def test_every_subcommand_in_usage_docs():
    with open(os.path.join(DOCS, "usage.md")) as fh:
        text = fh.read()
    missing = [n for n in _subcommands() if n not in text]
    assert not missing, (
        f"subcommands absent from docs/usage.md: {missing}")


def test_every_subcommand_has_help_text():
    parser = cli.build_parser()
    action = [a for a in parser._actions
              if isinstance(a, argparse._SubParsersAction)][0]
    helps = {ca.dest: ca.help for ca in action._choices_actions}
    for name in _subcommands():
        assert helps.get(name), f"subcommand {name!r} has no help text"
