"""Every CLI subcommand must be documented.

Guards against the recurring drift where a new subcommand lands in
``build_parser`` but neither the module docstring's usage block nor
``docs/usage.md`` mentions it.
"""

import argparse
import os

import repro.cli as cli

DOCS = os.path.join(os.path.dirname(__file__), "..", "docs")


def _subcommands():
    parser = cli.build_parser()
    actions = [a for a in parser._actions
               if isinstance(a, argparse._SubParsersAction)]
    assert actions, "CLI has no subparsers?"
    names = sorted(actions[0].choices)
    assert names, "CLI has no subcommands?"
    return names


def test_parser_exposes_known_commands():
    names = _subcommands()
    # Spot-check the anchors; the full list may grow.
    for expected in ("hpcg", "solve", "bench-runtime", "serve-bench"):
        assert expected in names


def test_every_subcommand_in_module_docstring():
    doc = cli.__doc__ or ""
    missing = [n for n in _subcommands() if n not in doc]
    assert not missing, (
        f"subcommands absent from repro.cli docstring: {missing}")


def test_every_subcommand_in_usage_docs():
    with open(os.path.join(DOCS, "usage.md")) as fh:
        text = fh.read()
    missing = [n for n in _subcommands() if n not in text]
    assert not missing, (
        f"subcommands absent from docs/usage.md: {missing}")


def test_every_subcommand_has_help_text():
    parser = cli.build_parser()
    action = [a for a in parser._actions
              if isinstance(a, argparse._SubParsersAction)][0]
    helps = {ca.dest: ca.help for ca in action._choices_actions}
    for name in _subcommands():
        assert helps.get(name), f"subcommand {name!r} has no help text"


def test_bench_all_documented():
    assert "bench" in _subcommands()
    assert "bench all" in (cli.__doc__ or "")
    with open(os.path.join(DOCS, "usage.md")) as fh:
        assert "bench all" in fh.read()
    with open(os.path.join(DOCS, "regression.md")) as fh:
        text = fh.read()
    # The regression doc must cover the whole workflow surface.
    for needle in ("--update-references", "machine", "tolerance",
                   "references/", "ratchet"):
        assert needle in text, f"docs/regression.md misses {needle!r}"


def test_bench_subcommands_use_registry_flags():
    """Satellite pin: the shared --out/--seed/--backend flags come
    from the registry helper, with uniform help text and defaults."""
    from repro.regress.registry import REGISTRY

    parser = cli.build_parser()
    action = [a for a in parser._actions
              if isinstance(a, argparse._SubParsersAction)][0]
    for emitter in REGISTRY.values():
        sp = action.choices[emitter.cli_command]
        by_flag = {opt: a for a in sp._actions
                   for opt in a.option_strings}
        assert by_flag["--out"].default == emitter.out_default
        assert "output path" in by_flag["--out"].help
        if emitter.supports_seed:
            assert by_flag["--seed"].default == 2024
            assert "seed" in by_flag["--seed"].help
        else:
            assert "--seed" not in by_flag
        if emitter.supports_backend:
            assert by_flag["--backend"].default == "numpy-fast"
        else:
            assert "--backend" not in by_flag
