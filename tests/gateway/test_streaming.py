"""Streaming partial results: columns resolve before the batch does.

Uses an instrumented slow service so chunk boundaries are
deterministic: with a per-drain stall, the first ``stream_chunk``
columns are guaranteed to resolve while later chunks are still queued
— the acceptance bar for the streaming tentpole."""

import asyncio
import time

import numpy as np
import pytest

from repro.gateway import SolveGateway
from repro.grids.grid import StructuredGrid
from repro.resilience.errors import DeadlineExceeded
from repro.serve.plan import PlanConfig
from repro.serve.service import SolveService

pytestmark = pytest.mark.fast

GRID = StructuredGrid((6, 6, 6))
CONFIG = PlanConfig(bsize=4)


def _rhs(seed=0, k=None):
    rng = np.random.default_rng(seed)
    shape = GRID.n_points if k is None else (GRID.n_points, k)
    return rng.standard_normal(shape)


class SlowService(SolveService):
    """Every drain stalls, making chunk completion order observable."""

    drain_delay = 0.05

    def drain(self, timeout=None):
        time.sleep(self.drain_delay)
        return super().drain(timeout)


def _slow_gateway(**kwargs):
    factory = lambda: SlowService(config=CONFIG)  # noqa: E731
    return SolveGateway(factory, config=CONFIG, **kwargs)


def test_stream_yields_partial_columns_before_batch_completes():
    k, chunk = 6, 2

    async def run():
        async with _slow_gateway(min_shards=1, max_shards=1,
                                 stream_chunk=chunk) as gw:
            ticket = await gw.submit(GRID, "27pt", _rhs(0, k=k))
            snapshots = []
            async for idx, col in ticket.stream():
                snapshots.append((idx, ticket.columns_done))
                assert np.all(np.isfinite(col))
            return snapshots, ticket

    snapshots, ticket = asyncio.run(run())
    assert [idx for idx, _ in snapshots] == list(range(k))
    # The tentpole claim: at least one column streamed out while the
    # rest of the batch was still unresolved.
    first_idx, done_at_first = snapshots[0]
    assert done_at_first < k
    # One shard, in-order chunks: first yield happens after exactly
    # the first chunk (not the whole batch).
    assert done_at_first == chunk
    assert ticket.done


def test_streamed_columns_equal_full_result():
    k = 5

    async def run():
        async with _slow_gateway(min_shards=1, max_shards=1,
                                 stream_chunk=2) as gw:
            rhs = _rhs(1, k=k)
            ticket = await gw.submit(GRID, "27pt", rhs)
            streamed = {}
            async for idx, col in ticket.stream():
                streamed[idx] = col
            full = await ticket.result()
            return streamed, full

    streamed, full = asyncio.run(run())
    assert full.shape == (GRID.n_points, k)
    for idx, col in streamed.items():
        assert np.array_equal(full[:, idx], col)


def test_stream_of_single_column_request():
    async def run():
        async with _slow_gateway(min_shards=1, max_shards=1) as gw:
            ticket = await gw.submit(GRID, "27pt", _rhs(2))
            out = [(i, c) async for i, c in ticket.stream()]
            return out

    out = asyncio.run(run())
    assert len(out) == 1 and out[0][0] == 0
    assert np.all(np.isfinite(out[0][1]))


def test_two_streams_interleave_across_tenants():
    """Both tickets make progress concurrently on one shard: neither
    tenant waits for the other's *entire* batch (fair chunking)."""

    async def run():
        async with _slow_gateway(min_shards=1, max_shards=1,
                                 stream_chunk=1) as gw:
            ta = await gw.submit(GRID, "27pt", _rhs(0, k=3),
                                 tenant="a")
            tb = await gw.submit(GRID, "27pt", _rhs(1, k=3),
                                 tenant="b")

            async def progress(ticket):
                marks = []
                async for idx, _ in ticket.stream():
                    marks.append((time.monotonic(), idx))
                return marks

            ma, mb = await asyncio.gather(progress(ta), progress(tb))
            return ma, mb

    ma, mb = asyncio.run(run())
    # b's first column resolves before a's last: interleaved service,
    # not tenant-serial.
    assert mb[0][0] < ma[-1][0]


def test_result_on_mixed_deadline_batch_raises_first_failure():
    """A ticket whose later chunks expired raises from ``result`` but
    still streams the columns that did finish."""

    async def run():
        async with _slow_gateway(min_shards=1, max_shards=1,
                                 stream_chunk=2) as gw:
            # The deadline is shorter than one drain stall: chunk 1
            # dispatches immediately (well inside it) but chunks 2-3
            # can only dispatch after chunk 1's >= 0.05s execution, by
            # which point the deadline has certainly passed.
            ticket = await gw.submit(GRID, "27pt", _rhs(0, k=6),
                                     deadline=0.04)
            done, failed = 0, 0
            try:
                async for _idx, _col in ticket.stream():
                    done += 1
            except DeadlineExceeded:
                failed += 1
            with pytest.raises(DeadlineExceeded):
                await ticket.result()
            return done, failed, gw.stats()

    done, failed, stats = asyncio.run(run())
    assert done == 2 and failed == 1
    assert stats["expired"] == 4
    assert stats["completed"] == 2
