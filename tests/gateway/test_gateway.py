"""End-to-end gateway behavior: bit-identity, deadlines, shutdown.

The gateway is a router, not a solver — every numeric result must be
bit-identical (``np.array_equal``) to the same request through a plain
synchronous :class:`~repro.serve.service.SolveService`, for both
storage strategies and across kernel backends."""

import asyncio
import time

import numpy as np
import pytest

from repro.gateway import GatewayClosed, SolveGateway
from repro.grids.grid import StructuredGrid
from repro.resilience.errors import DeadlineExceeded
from repro.serve.plan import PlanConfig
from repro.serve.service import SolveService

pytestmark = pytest.mark.fast

GRID = StructuredGrid((6, 6, 6))


def _rhs(seed=0, k=None):
    rng = np.random.default_rng(seed)
    shape = GRID.n_points if k is None else (GRID.n_points, k)
    return rng.standard_normal(shape)


def _direct(grid, stencil, rhs, op, config):
    with SolveService(config=config) as svc:
        if rhs.ndim == 1:
            t = svc.submit(grid, stencil, rhs, op=op)
            svc.drain()
            return t.result(timeout=0)
        tickets = [svc.submit(grid, stencil,
                              np.ascontiguousarray(rhs[:, j]), op=op)
                   for j in range(rhs.shape[1])]
        svc.drain()
        return np.stack([t.result(timeout=0) for t in tickets],
                        axis=1)


class SlowService(SolveService):
    """Instrumented service: every drain stalls first, so chunks take
    long enough for queueing/expiry races to be deterministic."""

    drain_delay = 0.08

    def drain(self, timeout=None):
        time.sleep(self.drain_delay)
        return super().drain(timeout)


@pytest.mark.parametrize("strategy", ["dbsr", "sell"])
@pytest.mark.parametrize("backend", ["numpy-fast", "numpy-counted"])
@pytest.mark.parametrize("op", ["lower", "upper", "symgs", "spmv"])
def test_gatewayed_solve_bit_identical_to_direct(strategy, backend,
                                                 op):
    config = PlanConfig(bsize=4, strategy=strategy, backend=backend)
    rhs = _rhs(7, k=3)

    async def run():
        async with SolveGateway(config=config, min_shards=1,
                                max_shards=1, stream_chunk=2) as gw:
            return await gw.solve(GRID, "27pt", rhs, op=op)

    got = asyncio.run(run())
    want = _direct(GRID, "27pt", rhs, op, config)
    assert np.array_equal(got, want)


def test_single_rhs_returns_1d_and_matches_direct():
    config = PlanConfig(bsize=4)
    rhs = _rhs(3)

    async def run():
        async with SolveGateway(config=config) as gw:
            return await gw.solve(GRID, "27pt", rhs)

    got = asyncio.run(run())
    assert got.ndim == 1
    assert np.array_equal(got, _direct(GRID, "27pt", rhs, "lower",
                                       config))


def test_multi_tenant_burst_loses_nothing_and_stays_identical():
    config = PlanConfig(bsize=4)
    n = 12

    async def run():
        async with SolveGateway(config=config, min_shards=1,
                                max_shards=3, high_water=2.0,
                                up_patience=1, cooldown=0) as gw:
            tickets = [await gw.submit(GRID, "27pt", _rhs(i),
                                       tenant=f"t{i % 3}")
                       for i in range(n)]
            results = [await t.result() for t in tickets]
            return results, gw.stats()

    results, stats = asyncio.run(run())
    assert stats["completed"] == n
    assert stats["failed"] == 0 and stats["expired"] == 0
    want = _direct(GRID, "27pt", _rhs(5), "lower", config)
    assert np.array_equal(results[5], want)


def test_deadline_expiring_in_queue_fails_typed_without_engine_work():
    config = PlanConfig(bsize=4)

    async def run():
        factory = lambda: SlowService(config=config)  # noqa: E731
        async with SolveGateway(factory, config=config, min_shards=1,
                                max_shards=1) as gw:
            # First request occupies the only shard for ~drain_delay;
            # the second's deadline expires while it waits in queue
            # (admission passed: the cold model estimate is tiny).
            slow = await gw.submit(GRID, "27pt", _rhs(0))
            doomed = await gw.submit(GRID, "27pt", _rhs(1),
                                     deadline=0.01)
            assert np.all(np.isfinite(await slow.result()))
            with pytest.raises(DeadlineExceeded) as ei:
                await doomed.result()
            assert ei.value.request_id == doomed.request_id
            assert ei.value.deadline_seconds == 0.01
            return gw.stats()

    stats = asyncio.run(run())
    assert stats["expired"] == 1
    assert stats["completed"] == 1


def test_close_fails_queued_chunks_with_gateway_closed():
    config = PlanConfig(bsize=4)

    async def run():
        factory = lambda: SlowService(config=config)  # noqa: E731
        gw = SolveGateway(factory, config=config, min_shards=1,
                          max_shards=1)
        running = await gw.submit(GRID, "27pt", _rhs(0))
        queued = [await gw.submit(GRID, "27pt", _rhs(i))
                  for i in range(1, 4)]
        await asyncio.sleep(0.01)  # let the first chunk dispatch
        await gw.close()
        # In-flight work finishes; queued work fails typed.
        assert np.all(np.isfinite(await running.result()))
        for t in queued:
            with pytest.raises(GatewayClosed):
                await t.result()
        # Submitting after close refuses immediately.
        with pytest.raises(GatewayClosed):
            await gw.submit(GRID, "27pt", _rhs(9))
        return gw.stats()

    stats = asyncio.run(run())
    assert stats["queue_depth"] == 0


def test_close_is_idempotent():
    async def run():
        gw = SolveGateway(config=PlanConfig(bsize=4))
        await gw.solve(GRID, "27pt", _rhs(0))
        await gw.close()
        await gw.close()

    asyncio.run(run())


def test_join_awaits_all_outstanding_work():
    config = PlanConfig(bsize=4)

    async def run():
        async with SolveGateway(config=config, min_shards=1,
                                max_shards=2) as gw:
            tickets = [await gw.submit(GRID, "27pt", _rhs(i))
                       for i in range(6)]
            await gw.join()
            assert all(t.done for t in tickets)

    asyncio.run(run())


def test_gateway_traces_admit_enqueue_dequeue_and_execute():
    from repro.observe.trace import Tracer, install

    config = PlanConfig(bsize=4)
    tracer = Tracer()

    async def run():
        async with SolveGateway(config=config, min_shards=1,
                                max_shards=1) as gw:
            await gw.solve(GRID, "27pt", _rhs(0), tenant="traced")

    install(tracer)
    try:
        asyncio.run(run())
    finally:
        install(None)
    spans = [s.name for s in tracer.walk()]
    events = [e["name"] for s in tracer.walk() for e in s.events]
    events += [e["name"] for e in tracer.events]
    assert "gateway.admit" in spans
    assert "gateway.execute" in spans
    assert "gateway.enqueue" in events
    assert "gateway.dequeue" in events
