"""gateway-bench report: gates, schema conformance, CLI wiring."""

import json

import pytest

from repro.gateway.bench import collect_bench_gateway
from repro.observe.schema_check import TraceSchemaError, validate_report

pytestmark = pytest.mark.fast

SCHEMA = "tests/gateway/bench_gateway.schema.json"


@pytest.fixture(scope="module")
def report():
    return collect_bench_gateway(nx=5, n_requests=12, k_stream=4)


def test_report_passes_all_gates(report):
    assert report["ok"] is True
    assert all(report["gates"].values()), report["gates"]


def test_report_matches_checked_in_schema(report):
    validate_report(report, schema_path=SCHEMA)


def test_schema_check_rejects_mutants(report):
    bad = json.loads(json.dumps(report))
    bad["schema"] = "dbsr-repro/bench-gateway/v0"
    with pytest.raises(TraceSchemaError):
        validate_report(bad, schema_path=SCHEMA)
    bad = json.loads(json.dumps(report))
    del bad["admission"]
    with pytest.raises(TraceSchemaError):
        validate_report(bad, schema_path=SCHEMA)


def test_identity_covers_both_strategies_and_backends(report):
    cases = report["identity"]["cases"]
    assert {c["strategy"] for c in cases} == {"dbsr", "sell"}
    assert len({c["backend"] for c in cases}) >= 2
    assert all(c["bitwise"] for c in cases)


def test_rejection_carries_estimate_breakdown(report):
    rej = report["admission"]["rejection"]
    assert rej is not None and rej["reason"] == "deadline"
    est = rej["estimate"]
    assert est["total_seconds"] > 0
    assert est["source"] in ("ewma", "model")
    assert report["admission"]["compile_delta"] == 0


def test_scaling_round_trip_with_no_lost_columns(report):
    scaling = report["scaling"]
    actions = [e["action"] for e in scaling["events"]]
    assert "scale_up" in actions and "scale_down" in actions
    assert scaling["peak_shards"] > scaling["min_shards"]
    assert scaling["final_shards"] == scaling["min_shards"]
    svc = report["service"]
    assert svc["completed_columns"] == svc["accepted_columns"]
    assert svc["failed_columns"] == 0
    assert svc["expired_columns"] == 0


def test_cli_gateway_bench_writes_valid_report(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_gateway.json"
    rc = main(["gateway-bench", "--nx", "5", "--requests", "12",
               "--k-stream", "4", "--out", str(out)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "infeasible deadline rejected pre-compile: yes" in text
    assert "elastic pool:" in text
    validate_report(json.loads(out.read_text()), schema_path=SCHEMA)
