"""Split compile EWMAs: warm repacks must not be priced as cold.

The regression (Bugfix 3): the estimator used to keep a single
compile-seconds EWMA, so a warm ILU structure whose coefficients
rotated was charged a full cold compile at admission — and feasible
refresh traffic was rejected whenever cold compiles were expensive.
Cold compiles and value-only repacks now feed separate series, and
``estimate(..., warm_refresh=True)`` prices only the repack.
"""

import asyncio

import numpy as np
import pytest

from repro.gateway import (
    AdmissionRejected,
    ServiceTimeEstimator,
    SolveGateway,
)
from repro.grids.grid import StructuredGrid
from repro.serve.ilu_plan import ilu_structural_fingerprint
from repro.serve.plan import PlanConfig

pytestmark = pytest.mark.fast

GRID = StructuredGrid((6, 6, 6))
CONFIG = PlanConfig(strategy="dbsr", bsize=4)


def _rhs(seed=0):
    return np.random.default_rng(seed).standard_normal(GRID.n_points)


# Estimator unit level --------------------------------------------------

def test_observe_compile_routes_by_kind():
    est = ServiceTimeEstimator()
    est.observe_compile(10.0, kind="cold")
    est.observe_compile(0.01, kind="refresh")
    assert est.compile_seconds() == pytest.approx(10.0)
    assert est.refresh_seconds() == pytest.approx(0.01)
    stats = est.stats()
    assert stats["compile_ewma_seconds"] == pytest.approx(10.0)
    assert stats["refresh_ewma_seconds"] == pytest.approx(0.01)


def test_observe_compile_rejects_unknown_kind():
    est = ServiceTimeEstimator()
    with pytest.raises(ValueError):
        est.observe_compile(1.0, kind="warm")


def test_refresh_default_is_half_cold_until_observed():
    est = ServiceTimeEstimator()
    est.observe_compile(4.0, kind="cold")
    assert est.refresh_seconds() == pytest.approx(2.0)
    est.observe_compile(0.25, kind="refresh")
    assert est.refresh_seconds() == pytest.approx(0.25)


def test_warm_refresh_is_charged_refresh_not_cold():
    """The regression itself: pre-fix this estimate carried the cold
    compile EWMA (10 s) and the breakdown had no refresh term."""
    est = ServiceTimeEstimator()
    fp = ilu_structural_fingerprint(GRID, "27pt", CONFIG)
    est.observe_compile(10.0, kind="cold")
    est.observe_compile(0.01, kind="refresh")
    est.observe(fp, "ilu_apply", seconds=0.001, k=1)

    warm = est.estimate(GRID, "27pt", CONFIG, "ilu_apply", 1, fp,
                        cold=False, warm_refresh=True)
    assert warm["compile_seconds"] == 0.0
    assert warm["refresh_seconds"] == pytest.approx(0.01)
    assert warm["total_seconds"] < 1.0

    cold = est.estimate(GRID, "27pt", CONFIG, "ilu_apply", 1, fp,
                        cold=True, warm_refresh=True)
    # Cold dominates: a structure absent from every shard cache pays
    # the full compile, never both terms.
    assert cold["compile_seconds"] == pytest.approx(10.0)
    assert cold["refresh_seconds"] == 0.0


def test_ilu_apply_has_an_analytic_model():
    est = ServiceTimeEstimator()
    fp = ilu_structural_fingerprint(GRID, "27pt", CONFIG)
    e = est.estimate(GRID, "27pt", CONFIG, "ilu_apply", 1, fp)
    assert e["source"] == "model"
    assert e["model_seconds"] > 0


# Gateway admission level -----------------------------------------------

def test_value_rotation_admitted_under_deadline_cold_rejected():
    """A deadline that fits solve+repack but not solve+cold-compile
    must admit the warm rotation and reject a genuinely cold
    structure."""
    async def run():
        async with SolveGateway(config=CONFIG, min_shards=1,
                                max_shards=1) as gw:
            first = await gw.submit(GRID, "27pt", _rhs(0),
                                    op="ilu_apply")
            await first.result()
            # Poison the cold EWMA (repeatedly: the first real compile
            # already seeded it) so any cold-priced admission with a
            # short deadline must reject.
            for _ in range(5):
                gw.estimator.observe_compile(10.0, kind="cold")
            gw.estimator.observe_compile(0.01, kind="refresh")

            plan = None
            for shard in list(gw.pool._shards):
                plan = shard.service.cache.peek(first.fingerprint)
                if plan is not None:
                    break
            rng = np.random.default_rng(3)
            v2 = plan.values_src * (1.0 + 0.05 * rng.uniform(
                -1.0, 1.0, plan.values_src.shape))

            rotated = await gw.submit(GRID, "27pt", _rhs(1),
                                      op="ilu_apply", values=v2,
                                      deadline=2.0)
            await rotated.result()

            cold_grid = StructuredGrid((7, 7, 7))
            with pytest.raises(AdmissionRejected) as ei:
                await gw.submit(cold_grid, "27pt",
                                np.zeros(cold_grid.n_points),
                                op="ilu_apply", deadline=2.0)
            return ei.value, gw.stats()

    exc, stats = asyncio.run(run())
    assert exc.reason == "deadline"
    assert exc.estimate["compile_seconds"] > 2.0
    assert exc.estimate["refresh_seconds"] == 0.0
    assert stats["rejected"] == 1


def test_refresh_ewma_fed_from_shard_stats():
    async def run():
        async with SolveGateway(config=CONFIG, min_shards=1,
                                max_shards=1) as gw:
            first = await gw.submit(GRID, "27pt", _rhs(0),
                                    op="ilu_apply")
            await first.result()
            plan = None
            for shard in list(gw.pool._shards):
                plan = shard.service.cache.peek(first.fingerprint)
                if plan is not None:
                    break
            rng = np.random.default_rng(4)
            v2 = plan.values_src * (1.0 + 0.05 * rng.uniform(
                -1.0, 1.0, plan.values_src.shape))
            rotated = await gw.submit(GRID, "27pt", _rhs(1),
                                      op="ilu_apply", values=v2)
            await rotated.result()
            return gw.estimator.stats()

    stats = asyncio.run(run())
    assert stats["refresh_ewma_seconds"] is not None
    assert stats["refresh_ewma_seconds"] > 0.0
