"""Admission control: pre-compile estimates and typed refusals.

The load-bearing claim: a request the gateway refuses costs **zero**
compiles — the estimator prices work from geometry alone (exact
analytic nnz + machine-model roofline), corrected by live EWMAs, and
rejection happens before any queue slot or plan."""

import asyncio

import numpy as np
import pytest

from repro.gateway import (AdmissionRejected, Ewma, QuotaExceeded,
                           ServiceTimeEstimator, SolveGateway,
                           TenantQuota, stencil_nnz)
from repro.grids.assembly import assemble_csr
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import stencil_by_name
from repro.serve.plan import PlanConfig, structural_fingerprint

pytestmark = pytest.mark.fast

GRID = StructuredGrid((6, 6, 6))
CONFIG = PlanConfig(bsize=4)


def _rhs(seed=0, k=None):
    rng = np.random.default_rng(seed)
    shape = GRID.n_points if k is None else (GRID.n_points, k)
    return rng.standard_normal(shape)


# Estimator building blocks ---------------------------------------------

@pytest.mark.parametrize("dims,stencil", [
    ((6, 6, 6), "27pt"), ((6, 6, 6), "7pt"), ((5, 9, 3), "27pt"),
    ((12, 12), "9pt"), ((7, 4), "5pt"),
])
def test_stencil_nnz_matches_assembled_matrix(dims, stencil):
    grid = StructuredGrid(dims)
    st = stencil_by_name(stencil)
    assert stencil_nnz(grid, st) == assemble_csr(grid, st).nnz


def test_ewma_none_until_fed_then_smooths():
    e = Ewma(alpha=0.5)
    assert e.value is None and e.n == 0
    assert e.update(1.0) == 1.0
    assert e.update(3.0) == pytest.approx(2.0)
    assert e.n == 2


def test_ewma_rejects_bad_alpha():
    with pytest.raises(ValueError):
        Ewma(alpha=0.0)
    with pytest.raises(ValueError):
        Ewma(alpha=1.5)


def test_estimate_switches_from_model_to_ewma():
    est = ServiceTimeEstimator()
    fp = structural_fingerprint(GRID, "27pt", CONFIG)
    before = est.estimate(GRID, "27pt", CONFIG, "lower", 1, fp)
    assert before["source"] == "model"
    assert before["service_seconds"] > 0
    est.observe(fp, "lower", seconds=0.5, k=1,
                model_seconds=before["model_seconds"])
    after = est.estimate(GRID, "27pt", CONFIG, "lower", 1, fp)
    assert after["source"] == "ewma"
    assert after["service_seconds"] == pytest.approx(0.5)
    # The calibration ratio also learned from the same sample.
    assert est.calibration() > 1.0


def test_estimate_scales_with_k_and_backlog():
    est = ServiceTimeEstimator()
    fp = structural_fingerprint(GRID, "27pt", CONFIG)
    est.observe(fp, "lower", seconds=0.1, k=1)
    e1 = est.estimate(GRID, "27pt", CONFIG, "lower", 1, fp)
    e4 = est.estimate(GRID, "27pt", CONFIG, "lower", 4, fp)
    assert e4["service_seconds"] == pytest.approx(
        4 * e1["service_seconds"])
    busy = est.estimate(GRID, "27pt", CONFIG, "lower", 1, fp,
                        backlog_chunks=6, n_shards=2)
    assert busy["queue_wait_seconds"] == pytest.approx(6 * 0.1 / 2)
    assert busy["total_seconds"] > e1["total_seconds"]


def test_cold_structure_pays_observed_compile_cost():
    est = ServiceTimeEstimator()
    fp = structural_fingerprint(GRID, "27pt", CONFIG)
    est.observe_compile(2.0)
    cold = est.estimate(GRID, "27pt", CONFIG, "lower", 1, fp,
                        cold=True)
    hot = est.estimate(GRID, "27pt", CONFIG, "lower", 1, fp,
                       cold=False)
    assert cold["compile_seconds"] == pytest.approx(2.0)
    assert hot["compile_seconds"] == 0.0


def test_calibration_ratio_is_clamped():
    est = ServiceTimeEstimator(calibration_bounds=(0.1, 10.0))
    fp = "fp"
    est.observe(fp, "lower", seconds=1e9, k=1, model_seconds=1e-9)
    assert est.calibration() == pytest.approx(10.0)


# Gateway-level refusals ------------------------------------------------

def test_infeasible_deadline_rejected_with_zero_compile_delta():
    async def run():
        async with SolveGateway(config=CONFIG, min_shards=1,
                                max_shards=1) as gw:
            # Warm: one real solve gives the estimator a live EWMA
            # and the shard cache its one plan.
            await gw.solve(GRID, "27pt", _rhs(0))
            compiles, _ = gw.pool.compile_totals()
            assert compiles == 1
            with pytest.raises(AdmissionRejected) as ei:
                await gw.submit(GRID, "27pt", _rhs(1),
                                deadline=1e-12)
            assert gw.pool.compile_totals()[0] == compiles
            return ei.value, gw.stats()

    exc, stats = asyncio.run(run())
    assert exc.reason == "deadline"
    assert exc.estimate is not None
    assert exc.estimate["total_seconds"] > 1e-12
    assert exc.estimate["source"] == "ewma"
    assert stats["rejected"] == 1
    # The refused request never became a ticket: nothing queued,
    # nothing outstanding, nothing failed.
    assert stats["queue_depth"] == 0 and stats["failed"] == 0


def test_cold_structure_rejection_uses_model_without_compiling():
    async def run():
        async with SolveGateway(config=CONFIG, min_shards=1,
                                max_shards=1) as gw:
            with pytest.raises(AdmissionRejected) as ei:
                await gw.submit(GRID, "27pt", _rhs(0), deadline=0.0)
            assert gw.pool.compile_totals()[0] == 0
            return ei.value

    exc = asyncio.run(run())
    assert exc.estimate["source"] == "model"


def test_deadline_zero_is_rejected_but_generous_deadline_admits():
    async def run():
        async with SolveGateway(config=CONFIG, min_shards=1,
                                max_shards=1) as gw:
            x = await gw.solve(GRID, "27pt", _rhs(0), deadline=300.0)
            assert np.all(np.isfinite(x))
            with pytest.raises(AdmissionRejected):
                await gw.submit(GRID, "27pt", _rhs(1), deadline=0.0)

    asyncio.run(run())


def test_queued_quota_refusal_is_atomic_and_typed():
    async def run():
        quota = TenantQuota(max_queued=2, max_in_flight=1)
        async with SolveGateway(config=CONFIG, min_shards=1,
                                max_shards=1, stream_chunk=1,
                                quotas={"t": quota}) as gw:
            # 4 columns -> 4 chunks > max_queued: all-or-nothing.
            with pytest.raises(QuotaExceeded) as ei:
                await gw.submit(GRID, "27pt", _rhs(0, k=4),
                                tenant="t")
            assert gw.scheduler.queued("t") == 0
            assert gw.stats()["rejected"] == 1
            # A fitting request is still admitted afterwards.
            x = await gw.solve(GRID, "27pt", _rhs(1, k=2),
                               tenant="t")
            assert x.shape == (GRID.n_points, 2)
            return ei.value

    exc = asyncio.run(run())
    assert exc.reason == "quota" and exc.quota == "queued"
    assert exc.limit == 2 and exc.tenant == "t"
    assert isinstance(exc, AdmissionRejected)
