"""ElasticShardPool: hysteresis, cooldown, warm drain, bounds.

The controller is driven entirely by ``observe()`` samples (one per
gateway submit/completion/poll), so every scenario here is a
deterministic sequence of observations — no wall-clock sleeps."""

import asyncio
from types import SimpleNamespace

import pytest

from repro.gateway.pool import ElasticShardPool, GatewayShard
from repro.observe.metrics import MetricsRegistry

pytestmark = pytest.mark.fast


class FakeService:
    """Stands in for a SolveService: lifecycle only."""

    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True

    def stats(self):
        return {"closed": self.closed}


def make_pool(**kwargs):
    services = []

    def factory():
        svc = FakeService()
        services.append(svc)
        return svc

    pool = ElasticShardPool(factory, **kwargs)
    return pool, services


def test_starts_at_min_shards_and_validates_bounds():
    pool, _ = make_pool(min_shards=2, max_shards=4)
    assert pool.n_shards == 2 and pool.n_free == 2
    with pytest.raises(ValueError):
        ElasticShardPool(FakeService, min_shards=3, max_shards=2)


def test_scale_up_needs_patience_consecutive_high_samples():
    pool, _ = make_pool(min_shards=1, max_shards=4, high_water=4.0,
                        up_patience=3, cooldown=0)
    assert pool.observe(8) is None
    assert pool.observe(8) is None
    # An interleaved calm sample resets the streak.
    assert pool.observe(0) is None
    assert pool.observe(8) is None
    assert pool.observe(8) is None
    assert pool.observe(8) == "scale_up"
    assert pool.n_shards == 2


def test_cooldown_suppresses_back_to_back_events():
    pool, _ = make_pool(min_shards=1, max_shards=4, high_water=2.0,
                        up_patience=1, cooldown=2)
    assert pool.observe(10) == "scale_up"
    # Two samples are swallowed by the cooldown, however hot.
    assert pool.observe(50) is None
    assert pool.observe(50) is None
    assert pool.observe(50) == "scale_up"
    assert pool.n_shards == 3


def test_high_water_is_per_active_shard():
    pool, _ = make_pool(min_shards=2, max_shards=4, high_water=4.0,
                        up_patience=1, cooldown=0)
    # depth 6 over 2 shards = 3 per shard < 4: no pressure.
    assert pool.observe(6) is None
    assert pool.observe(8) == "scale_up"


def test_scale_down_reaps_idle_shard_and_respects_min():
    pool, services = make_pool(min_shards=1, max_shards=4,
                               high_water=1.0, low_water=0.0,
                               up_patience=1, down_patience=2,
                               cooldown=0)
    assert pool.observe(5) == "scale_up"
    assert pool.n_shards == 2
    assert pool.observe(0) is None
    assert pool.observe(0) == "scale_down"
    assert pool.n_shards == 1
    assert services[1].closed  # the idle spare was actually closed
    # Never below min_shards, no matter how long the idle streak.
    for _ in range(10):
        pool.observe(0)
    assert pool.n_shards == 1
    assert not services[0].closed


def test_never_exceeds_max_shards():
    pool, _ = make_pool(min_shards=1, max_shards=2, high_water=1.0,
                        up_patience=1, cooldown=0)
    assert pool.observe(9) == "scale_up"
    for _ in range(6):
        pool.observe(9)
    assert pool.n_shards == 2


def test_warm_drain_defers_reap_until_release():
    async def run():
        pool, services = make_pool(min_shards=1, max_shards=2,
                                   high_water=1.0, low_water=0.0,
                                   up_patience=1, down_patience=1,
                                   cooldown=0)
        pool.observe(4)  # scale_up -> 2 shards
        a = await pool.acquire()
        b = await pool.acquire()
        assert pool.n_free == 0
        # Scale-down with every shard busy: mark, don't kill.
        assert pool.observe(0) == "scale_down"
        assert pool.n_shards == 2 and pool.n_draining == 1
        assert not any(s.closed for s in services)
        victim, keeper = (a, b) if a.draining else (b, a)
        await pool.release(victim)  # warm drain completes here
        assert pool.n_shards == 1 and pool.n_draining == 0
        assert victim.service.closed
        await pool.release(keeper)
        assert pool.n_free == 1 and not keeper.service.closed
        return pool

    pool = asyncio.run(run())
    kinds = [e["action"] for e in pool.scale_events]
    assert kinds == ["scale_up", "scale_down"]
    assert pool.scale_events[-1]["warm_drained"] is True


def test_acquire_waits_until_a_shard_frees():
    async def run():
        pool, _ = make_pool(min_shards=1, max_shards=1)
        shard = await pool.acquire()
        waiter = asyncio.create_task(pool.acquire())
        await asyncio.sleep(0.01)
        assert not waiter.done()
        await pool.release(shard)
        got = await asyncio.wait_for(waiter, timeout=1.0)
        assert got is shard

    asyncio.run(run())


def test_scale_up_wakes_blocked_acquirers():
    async def run():
        pool, _ = make_pool(min_shards=1, max_shards=2,
                            high_water=1.0, up_patience=1,
                            cooldown=0)
        first = await pool.acquire()
        waiter = asyncio.create_task(pool.acquire())
        await asyncio.sleep(0.01)
        assert not waiter.done()
        assert pool.observe(5) == "scale_up"
        got = await asyncio.wait_for(waiter, timeout=1.0)
        assert got is not first

    asyncio.run(run())


def test_metrics_and_stats_reflect_scaling():
    reg = MetricsRegistry()
    pool, _ = make_pool(min_shards=1, max_shards=3, high_water=1.0,
                        low_water=0.0, up_patience=1,
                        down_patience=1, cooldown=0, metrics=reg)
    pool.observe(5)
    pool.observe(5)
    pool.observe(0)
    snap = reg.snapshot()
    assert snap["gateway.scale_up"]["value"] == 2
    assert snap["gateway.scale_down"]["value"] == 1
    assert snap["gateway.shards"]["value"] == 2
    stats = pool.stats()
    assert stats["n_shards"] == 2
    assert len(stats["scale_events"]) == 3
    assert [e["action"] for e in stats["scale_events"]] == \
        ["scale_up", "scale_up", "scale_down"]


def test_close_closes_every_shard():
    pool, services = make_pool(min_shards=3, max_shards=3)
    pool.close()
    assert pool.n_shards == 0
    assert all(s.closed for s in services)


def test_shard_execute_not_needed_for_pool_logic():
    # GatewayShard over a FakeService still reports stats/compiles.
    shard = GatewayShard(0, FakeService())
    assert shard.compile_stats() == (0, 0.0)
    assert shard.refresh_stats() == (0, 0.0)
    assert shard.has_plan("deadbeef") is False
    assert shard.stats()["index"] == 0


def test_pool_refresh_stats_aggregates_across_shards():
    # Regression: the pool-level method referenced a nonexistent
    # self.service (copy-paste from GatewayShard) and raised
    # AttributeError; it must sum over the live shards instead.
    pool, services = make_pool(min_shards=2, max_shards=2)
    assert pool.refresh_stats() == (0, 0.0)
    for i, svc in enumerate(services):
        svc.cache = SimpleNamespace(refreshes=i + 1,
                                    refresh_seconds=0.5 * (i + 1))
    assert pool.refresh_stats() == (3, 1.5)
