"""Cancelling a streaming consumer must not strand gateway state.

A consumer that abandons ``ticket.stream()`` mid-iteration cancels its
own task, not the chunk dispatch: the remaining columns still resolve,
every shard comes back to the free list, and no background chunk task
is leaked. This is the contract that makes client-side timeouts safe.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.gateway import SolveGateway
from repro.grids.grid import StructuredGrid
from repro.serve.plan import PlanConfig
from repro.serve.service import SolveService

pytestmark = pytest.mark.fast

GRID = StructuredGrid((6, 6, 6))
CONFIG = PlanConfig(bsize=4)


def _rhs(seed=0, k=None):
    rng = np.random.default_rng(seed)
    shape = GRID.n_points if k is None else (GRID.n_points, k)
    return rng.standard_normal(shape)


class SlowService(SolveService):
    """Per-drain stall so the consumer can be cancelled mid-stream."""

    drain_delay = 0.05

    def drain(self, timeout=None):
        time.sleep(self.drain_delay)
        return super().drain(timeout)


def _slow_gateway(**kwargs):
    factory = lambda: SlowService(config=CONFIG)  # noqa: E731
    kwargs.setdefault("min_shards", 1)
    kwargs.setdefault("max_shards", 1)
    kwargs.setdefault("stream_chunk", 1)
    return SolveGateway(factory, config=CONFIG, **kwargs)


def test_cancelled_consumer_leaks_no_futures_and_strands_no_shard():
    k = 6

    async def run():
        async with _slow_gateway() as gw:
            ticket = await gw.submit(GRID, "27pt", _rhs(0, k=k))
            seen = []

            async def consume():
                async for idx, col in ticket.stream():
                    seen.append(idx)

            consumer = asyncio.create_task(consume())
            # Let at least one column land, then walk away.
            while not seen:
                await asyncio.sleep(0.005)
            consumer.cancel()
            with pytest.raises(asyncio.CancelledError):
                await consumer

            # The gateway still finishes the request.
            await gw.join()
            assert ticket.done
            assert all(f.done() and f.exception() is None
                       for f in ticket.futures)
            # No shard stranded in the busy set, no chunk task leaked.
            assert gw.pool.n_free == gw.pool.n_shards
            await asyncio.sleep(0)  # flush done-callbacks
            assert not [t for t in gw._tasks if not t.done()]
            # The abandoned columns are still bit-usable.
            full = await ticket.result()
            assert full.shape == (GRID.n_points, k)
            assert np.all(np.isfinite(full))
            return len(seen)

    consumed = asyncio.run(run())
    assert 1 <= consumed < k  # genuinely cancelled mid-stream


def test_two_streams_one_cancelled_other_completes():
    async def run():
        async with _slow_gateway() as gw:
            t1 = await gw.submit(GRID, "27pt", _rhs(1, k=4))
            t2 = await gw.submit(GRID, "27pt", _rhs(2, k=4))

            async def consume(ticket, out):
                async for idx, _ in ticket.stream():
                    out.append(idx)

            got1, got2 = [], []
            c1 = asyncio.create_task(consume(t1, got1))
            c2 = asyncio.create_task(consume(t2, got2))
            while not got1:
                await asyncio.sleep(0.005)
            c1.cancel()
            with pytest.raises(asyncio.CancelledError):
                await c1
            await c2  # untouched consumer streams to the end
            assert sorted(got2) == [0, 1, 2, 3]
            await gw.join()
            assert t1.done and t2.done
            assert gw.pool.n_free == gw.pool.n_shards
            s = gw.stats()
            assert s["failed"] == 0
            assert s["completed"] == 8

    asyncio.run(run())


def test_stream_after_cancel_resumes_with_remaining_columns():
    # A second stream() call on the same ticket picks up whatever the
    # cancelled consumer never saw (futures are multi-consumer safe).
    async def run():
        async with _slow_gateway() as gw:
            ticket = await gw.submit(GRID, "27pt", _rhs(3, k=4))
            first = []

            async def consume():
                async for idx, _ in ticket.stream():
                    first.append(idx)

            consumer = asyncio.create_task(consume())
            while not first:
                await asyncio.sleep(0.005)
            consumer.cancel()
            with pytest.raises(asyncio.CancelledError):
                await consumer
            replay = [idx async for idx, _ in ticket.stream()]
            assert sorted(replay) == [0, 1, 2, 3]  # full set, in order
            await gw.join()
            assert gw.pool.n_free == gw.pool.n_shards

    asyncio.run(run())
