"""Pool health semantics: defunct reaping, quarantine, try_acquire.

Regression for the release-path bug where a shard whose ``execute``
raised a non-recoverable error (``MemoryError`` / ``AssertionError``,
the :data:`~repro.resilience.errors.NON_RECOVERABLE_ERRORS` set) was
returned to the free list and kept poisoning later chunks. A defunct
shard must be reaped on release — including when the failure happened
on a worker thread, which is how the gateway actually runs shards.
"""

import asyncio

import numpy as np
import pytest

from repro.gateway.pool import ElasticShardPool, GatewayShard
from repro.grids.grid import StructuredGrid
from repro.serve.plan import PlanConfig, _resolve_stencil

pytestmark = pytest.mark.fast

GRID = StructuredGrid((4, 4, 4))
STENCIL = _resolve_stencil("27pt")
CONFIG = PlanConfig(bsize=4)


class ExplodingService:
    """Raises a non-recoverable error on first submit, then is fine."""

    def __init__(self, exc_type=MemoryError):
        self.exc_type = exc_type
        self.closed = False
        self.submits = 0

    def submit(self, *args, **kwargs):
        self.submits += 1
        raise self.exc_type("resource exhaustion")

    def drain(self):
        pass

    def close(self):
        self.closed = True

    def stats(self):
        return {"submits": self.submits}


def make_pool(factory, **kw):
    kw.setdefault("min_shards", 1)
    kw.setdefault("max_shards", 2)
    return ElasticShardPool(factory, **kw)


@pytest.mark.parametrize("exc_type", [MemoryError, AssertionError])
def test_non_recoverable_execute_marks_shard_defunct(exc_type):
    shard = GatewayShard(0, ExplodingService(exc_type))
    with pytest.raises(exc_type):
        shard.execute(GRID, STENCIL, "lower", CONFIG,
                      [np.ones(GRID.n_points)])
    assert shard.defunct


def test_defunct_shard_is_reaped_on_release_not_requeued():
    async def run():
        services = []

        def factory():
            svc = ExplodingService()
            services.append(svc)
            return svc

        pool = make_pool(factory)
        shard = await pool.acquire()
        # The gateway path: execute on a worker thread, then release
        # from the event loop.
        with pytest.raises(MemoryError):
            await asyncio.to_thread(
                shard.execute, GRID, STENCIL, "lower", CONFIG,
                [np.ones(GRID.n_points)])
        assert shard.defunct
        await pool.release(shard)
        # Reaped, never back in the free list — and the pool refilled
        # itself to min_shards with a fresh service.
        assert shard not in pool._shards
        assert all(s is not shard for s in pool._free)
        assert services[0].closed
        assert pool.n_shards == 1 and pool.n_free == 1
        assert pool._shards[0].service is services[1]
        events = [e["action"] for e in pool.lifecycle_events]
        assert events == ["reap_defunct"]
        # The controller's scale history stays clean: health reaps are
        # lifecycle events, not scale events.
        assert pool.scale_events == []
        pool.close()

    asyncio.run(run())


def test_defunct_release_wakes_blocked_acquirers():
    async def run():
        pool = make_pool(lambda: ExplodingService(), max_shards=1)
        shard = await pool.acquire()
        waiter = asyncio.create_task(pool.acquire())
        await asyncio.sleep(0.01)
        assert not waiter.done()
        shard.defunct = True
        await pool.release(shard)  # reap + respawn + notify
        got = await asyncio.wait_for(waiter, timeout=1.0)
        assert got is not shard
        pool.close()

    asyncio.run(run())


def test_concurrent_defunct_releases_under_threaded_failures():
    """Several shards fail non-recoverably on worker threads at once;
    every one is reaped, none leaks back to the free list."""

    async def run():
        pool = make_pool(lambda: ExplodingService(), min_shards=3,
                         max_shards=3)
        shards = [await pool.acquire() for _ in range(3)]

        async def fail_and_release(shard):
            with pytest.raises(MemoryError):
                await asyncio.to_thread(
                    shard.execute, GRID, STENCIL, "lower", CONFIG,
                    [np.ones(GRID.n_points)])
            await pool.release(shard)

        await asyncio.gather(*(fail_and_release(s) for s in shards))
        assert all(s not in pool._shards for s in shards)
        assert all(s.defunct for s in shards)
        # Refilled back to min_shards with fresh services.
        assert pool.n_shards == 3 and pool.n_free == 3
        assert len(pool.lifecycle_events) == 3
        pool.close()

    asyncio.run(run())


def test_try_acquire_is_non_blocking():
    async def run():
        pool = make_pool(lambda: ExplodingService(), min_shards=1,
                         max_shards=1)
        shard = pool.try_acquire()
        assert shard is not None
        assert pool.try_acquire() is None  # empty: no waiting
        await pool.release(shard)
        assert pool.try_acquire() is shard
        pool.close()

    asyncio.run(run())


def test_draining_and_defunct_prefers_reap_path():
    # A shard that is both warm-draining and defunct must be reaped
    # via the defunct path (lifecycle event), not double-counted as a
    # controller scale-down.
    async def run():
        pool = make_pool(lambda: ExplodingService(), min_shards=2,
                         max_shards=2)
        shard = await pool.acquire()
        shard.draining = True
        shard.defunct = True
        await pool.release(shard)
        assert [e["action"] for e in pool.lifecycle_events] \
            == ["reap_defunct"]
        assert pool.scale_events == []
        pool.close()

    asyncio.run(run())
