"""Hypothesis properties of the weighted fair scheduler.

The ISSUE-level contract of :class:`repro.gateway.queues.FairScheduler`:

* a nonempty tenant is never starved — under any arrival pattern it is
  served within a bounded number of pops;
* quotas hold invariantly — queued never exceeds ``max_queued``,
  concurrent in-flight never exceeds ``max_in_flight``;
* sustained service is weight-proportional;
* idling banks no credit (pass clamp on refill-from-empty).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gateway.errors import QuotaExceeded
from repro.gateway.queues import FairScheduler, TenantQuota

pytestmark = pytest.mark.fast

TENANTS = ("a", "b", "c", "d")

quotas = st.fixed_dictionaries({
    name: st.builds(
        TenantQuota,
        max_queued=st.integers(min_value=1, max_value=8),
        max_in_flight=st.integers(min_value=1, max_value=4),
        weight=st.sampled_from([0.5, 1.0, 2.0, 4.0]),
    )
    for name in TENANTS
})

# A workload script: push(tenant), pop, or finish-oldest.
actions = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.sampled_from(TENANTS)),
        st.tuples(st.just("pop"), st.none()),
        st.tuples(st.just("finish"), st.none()),
    ),
    min_size=1, max_size=200,
)


@given(quotas=quotas, script=actions)
@settings(max_examples=150, deadline=None)
def test_quotas_hold_invariantly_under_any_script(quotas, script):
    sched = FairScheduler()
    for name, q in quotas.items():
        sched.set_quota(name, q)
    served: list = []  # tenants of popped-but-unfinished items
    for action, arg in script:
        if action == "push":
            try:
                sched.push(arg, object())
            except QuotaExceeded as exc:
                assert exc.reason == "quota"
                assert sched.queued(arg) == quotas[arg].max_queued
        elif action == "pop":
            popped = sched.pop()
            if popped is not None:
                served.append(popped[0])
        elif served:
            sched.finish(served.pop(0))
        # The invariants, re-checked after every single step:
        stats = sched.stats()
        for name, row in stats.items():
            assert row["queued"] <= quotas[name].max_queued
            assert 0 <= row["in_flight"] <= quotas[name].max_in_flight
    assert sched.in_flight == len(served)


@given(
    backlog=st.dictionaries(st.sampled_from(TENANTS),
                            st.integers(min_value=1, max_value=6),
                            min_size=2),
    weights=st.lists(st.sampled_from([0.5, 1.0, 2.0, 3.0]),
                     min_size=4, max_size=4),
)
@settings(max_examples=150, deadline=None)
def test_every_backlogged_tenant_is_served_within_a_bounded_window(
        backlog, weights):
    """No starvation: with unbounded in-flight, a nonempty tenant is
    popped before the full backlog of everyone else drains twice."""
    sched = FairScheduler(TenantQuota(max_queued=64,
                                      max_in_flight=64))
    for name, w in zip(TENANTS, weights):
        sched.set_quota(name, TenantQuota(max_queued=64,
                                          max_in_flight=64,
                                          weight=w))
    for name, n in backlog.items():
        for _ in range(n):
            sched.push(name, object())
    first_pop: dict = {}
    for i in range(sum(backlog.values())):
        name, _ = sched.pop()
        first_pop.setdefault(name, i)
    # Everyone with work got served, and no tenant had to wait for
    # more pops than there are tenants times the max weight ratio.
    assert set(first_pop) == set(backlog)
    max_ratio = max(weights) / min(weights)
    bound = len(backlog) * max_ratio
    assert all(i <= bound for i in first_pop.values()), first_pop


@given(
    w_heavy=st.sampled_from([2.0, 3.0, 4.0]),
    rounds=st.integers(min_value=40, max_value=120),
)
@settings(max_examples=60, deadline=None)
def test_sustained_service_is_weight_proportional(w_heavy, rounds):
    """A weight-w tenant is served ~w times as often as a weight-1
    tenant while both stay backlogged (exact for stride scheduling,
    up to integer rounding)."""
    sched = FairScheduler(TenantQuota(max_queued=1024,
                                      max_in_flight=1024))
    sched.set_quota("heavy", TenantQuota(max_queued=1024,
                                         max_in_flight=1024,
                                         weight=w_heavy))
    sched.set_quota("light", TenantQuota(max_queued=1024,
                                         max_in_flight=1024,
                                         weight=1.0))
    for _ in range(rounds):
        sched.push("heavy", object())
        sched.push("light", object())
    counts = {"heavy": 0, "light": 0}
    # Pop while both are still backlogged so shares are meaningful.
    while sched.queued("heavy") > 0 and sched.queued("light") > 0:
        name, _ = sched.pop()
        counts[name] += 1
    assert counts["light"] >= 1
    ratio = counts["heavy"] / counts["light"]
    assert abs(ratio - w_heavy) <= 1.0, counts


@given(idle_pops=st.integers(min_value=1, max_value=50))
@settings(max_examples=50, deadline=None)
def test_idle_tenant_banks_no_credit(idle_pops):
    """A tenant that idles while another is served re-enters at the
    current pass, so it cannot monopolize the queue afterwards."""
    sched = FairScheduler(TenantQuota(max_queued=256,
                                      max_in_flight=256))
    for _ in range(idle_pops + 2):
        sched.push("busy", object())
    for _ in range(idle_pops):
        assert sched.pop()[0] == "busy"
    # "lazy" arrives late; service must alternate, not run lazy-only.
    for _ in range(4):
        sched.push("lazy", object())
    order = [sched.pop()[0] for _ in range(4)]
    assert order.count("lazy") <= 2, order
