"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


def test_hpcg_command(capsys):
    assert main(["hpcg", "--nx", "8", "--levels", "2",
                 "--variant", "dbsr", "--bsize", "4",
                 "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "HPCG[dbsr]" in out
    assert "converged=True" in out


def test_hpcg_with_model(capsys):
    assert main(["hpcg", "--nx", "8", "--levels", "2", "--bsize", "4",
                 "--model"]) == 0
    out = capsys.readouterr().out
    assert "Phytium" in out
    assert "GFLOPS" in out


def test_ilu_single_strategy(capsys):
    assert main(["ilu", "--nx", "8", "--strategy", "simd-auto",
                 "--threads", "4", "--bsize", "4"]) == 0
    out = capsys.readouterr().out
    assert "simd-auto" in out
    assert "gather-free=yes" in out


def test_storage_command(capsys):
    assert main(["storage", "--nx", "8", "--bsizes", "1,2,4"]) == 0
    out = capsys.readouterr().out
    assert "DBSR total" in out


def test_weak_scaling_command(capsys):
    assert main(["weak-scaling", "--nx", "8", "--levels", "2",
                 "--bsize", "4", "--nodes", "1,4,16"]) == 0
    out = capsys.readouterr().out
    assert "efficiency" in out


def test_solve_command(tmp_path, capsys, rng):
    from repro.formats.coo import COOMatrix
    from repro.formats.io import write_matrix_market

    n = 20
    dense = rng.standard_normal((n, n))
    dense[np.abs(dense) < 1.0] = 0.0
    dense = (dense + dense.T) / 2
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1)
    path = tmp_path / "sys.mtx"
    write_matrix_market(COOMatrix.from_dense(dense), str(path))

    assert main(["solve", str(path), "--block-size", "5",
                 "--bsize", "2", "--tol", "1e-10"]) == 0
    out = capsys.readouterr().out
    assert "converged=True" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["warp-drive"])


def test_spy_command(tmp_path, capsys, rng):
    from repro.formats.coo import COOMatrix
    from repro.formats.io import write_matrix_market

    dense = np.eye(6)
    dense[0, 5] = 1.0
    path = tmp_path / "p.mtx"
    write_matrix_market(COOMatrix.from_dense(dense), str(path))
    assert main(["spy", str(path)]) == 0
    out = capsys.readouterr().out
    assert "6x6, nnz=7" in out


def test_analyze_command(capsys):
    assert main(["analyze", "--nx", "6", "--stencil", "7pt",
                 "--bsize", "2"]) == 0
    out = capsys.readouterr().out
    assert "rho(SYMGS)" in out
    assert "Phytium" in out
    assert "intensity" in out


def test_solve_command_prints_sparkline(tmp_path, capsys, rng):
    from repro.formats.coo import COOMatrix
    from repro.formats.io import write_matrix_market

    n = 16
    dense = rng.standard_normal((n, n))
    dense[np.abs(dense) < 1.0] = 0.0
    dense = (dense + dense.T) / 2
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1)
    path = tmp_path / "s.mtx"
    write_matrix_market(COOMatrix.from_dense(dense), str(path))
    assert main(["solve", str(path), "--block-size", "4",
                 "--bsize", "2"]) == 0
    out = capsys.readouterr().out
    assert "residual |" in out


def test_bench_runtime_command(tmp_path, capsys):
    out_path = tmp_path / "BENCH_runtime.json"
    assert main(["bench-runtime", "--nx", "8", "--bsize", "4",
                 "--workers", "2", "--repeats", "1",
                 "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "pools created: 1" in out
    assert "sptrsv_dbsr_lower" in out
    import json

    report = json.loads(out_path.read_text())
    assert report["schema"] == "dbsr-repro/bench-runtime/v1"
    for kernel in ("sptrsv_dbsr_lower", "spmv_dbsr", "symgs_dbsr"):
        assert report["kernels"][kernel]["counts"]["bytes"]["total"] > 0


def test_serve_bench_command(tmp_path, capsys):
    out_path = tmp_path / "BENCH_serve.json"
    assert main(["serve-bench", "--nx", "8", "--requests", "24",
                 "--max-batch", "8", "--workers", "2",
                 "--machine", "kp920", "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "plan cache" in out
    assert "value B/solve" in out
    import json

    report = json.loads(out_path.read_text())
    assert report["schema"] == "dbsr-repro/bench-serve/v1"
    # ISSUE acceptance: high hit rate on a repeated-structure workload
    # and strictly decreasing value bytes per solve with k.
    assert report["cache"]["hit_rate"] >= 0.9
    assert report["batch_scaling"]["value_bytes_per_solve_decreasing"]
    assert report["batch_scaling"]["all_bitwise_equal"]
    widths = report["batch_scaling"]["widths"]
    per_solve = [w["value_bytes_per_solve"] for w in widths]
    assert per_solve == sorted(per_solve, reverse=True)
    assert all(w["bitwise_equal_to_unbatched"] for w in widths)
    assert all(w["matches_closed_form"] for w in widths)
