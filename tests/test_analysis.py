"""Tests for the analysis package (spectra and rooflines)."""

import numpy as np
import pytest

from repro.analysis.iteration_matrix import (
    gs_iteration_matrix,
    ilu_iteration_matrix,
    ordering_convergence_report,
    spectral_radius,
)
from repro.analysis.roofline import arithmetic_intensity, roofline_point
from repro.simd.counters import OpCounter
from repro.simd.machine import INTEL_XEON


def test_spectral_radius_diagonal():
    E = np.diag([0.5, -0.9, 0.1])
    assert spectral_radius(E) == pytest.approx(0.9, abs=1e-3)


def test_spectral_radius_zero_matrix():
    assert spectral_radius(np.zeros((4, 4))) == 0.0


def test_gs_contracts_on_spd(problem_2d_5pt):
    rho = spectral_radius(gs_iteration_matrix(problem_2d_5pt.matrix))
    assert 0.0 < rho < 1.0


def test_symgs_contracts_at_least_as_fast_as_forward(problem_2d_5pt):
    A = problem_2d_5pt.matrix
    rho_f = spectral_radius(gs_iteration_matrix(A, symmetric=False))
    rho_s = spectral_radius(gs_iteration_matrix(A, symmetric=True))
    assert rho_s <= rho_f + 1e-6


def test_rate_predicts_iteration_count(problem_2d_5pt):
    """Measured residual reduction tracks the spectral radius."""
    from repro.kernels.symgs import symgs_csr

    A = problem_2d_5pt.matrix
    rho = spectral_radius(gs_iteration_matrix(A))
    x = np.zeros(problem_2d_5pt.n)
    b = problem_2d_5pt.rhs
    norms = []
    for _ in range(25):
        symgs_csr(A, A.diagonal(), x, b)
        norms.append(np.linalg.norm(b - A.matvec(x)))
    measured = (norms[-1] / norms[4]) ** (1 / 20)
    assert measured == pytest.approx(rho, rel=0.2)


def test_ordering_hierarchy_matches_paper(problem_3d_27pt):
    """rho: lexicographic <= BMC < MC — the §II-B trade, measured."""
    from repro.ordering.bmc import build_bmc

    p = problem_3d_27pt
    mc = build_bmc(p.grid, p.stencil, (1, 1, 1))
    bmc = build_bmc(p.grid, p.stencil, (2, 2, 2))
    report = ordering_convergence_report(p, {
        "lex": None,
        "bmc": bmc.perm.old_to_new,
        "mc": mc.perm.old_to_new,
    })
    assert report["lex"] <= report["bmc"] + 1e-6
    assert report["bmc"] < report["mc"]


def test_vbmc_rho_equals_bmc(problem_3d_27pt):
    """Same convergence rate as BMC — exactly (§III-A)."""
    from repro.ordering.bmc import build_bmc
    from repro.ordering.vbmc import build_vbmc

    p = problem_3d_27pt
    bmc = build_bmc(p.grid, p.stencil, (2, 2, 2))
    vb = build_vbmc(p.grid, p.stencil, (2, 2, 2), 4)
    rho_bmc = spectral_radius(gs_iteration_matrix(
        p.matrix.permute(bmc.perm.old_to_new)))
    rho_vb = spectral_radius(gs_iteration_matrix(
        vb.apply_matrix(p.matrix)))
    assert rho_vb == pytest.approx(rho_bmc, rel=1e-6)


def test_ilu_iteration_matrix_contracts(problem_2d):
    from repro.ilu.ilu0_csr import ilu0_factorize_csr

    A = problem_2d.matrix
    f = ilu0_factorize_csr(A)
    rho = spectral_radius(ilu_iteration_matrix(A, f))
    assert 0.0 < rho < 1.0
    # ILU beats plain SYMGS on this operator.
    assert rho < spectral_radius(gs_iteration_matrix(A))


# --- Roofline ---------------------------------------------------------------

def test_intensity_with_overfetch():
    c = OpCounter(bsize=1, sflop=100, bytes_vector=50,
                  bytes_gathered=50)
    plain = arithmetic_intensity(c)
    machine = arithmetic_intensity(c, INTEL_XEON)
    assert plain == pytest.approx(100 / 100)
    assert machine < plain  # over-fetch inflates the denominator


def test_sparse_kernels_are_memory_bound(reordered_3d):
    """The paper's premise: SpTRSV-class kernels sit under the
    bandwidth roof at full thread count."""
    from repro.kernels.counts import sptrsv_csr_counts, \
        sptrsv_dbsr_counts

    csr, dbsr = reordered_3d
    for counter, vec in ((sptrsv_csr_counts(csr), False),
                         (sptrsv_dbsr_counts(dbsr, True), True)):
        pt = roofline_point(counter, INTEL_XEON, vectorized=vec)
        assert pt.memory_bound


def test_dbsr_higher_intensity_than_csr(reordered_3d):
    """Fewer bytes per flop -> a higher roofline ceiling: the DBSR
    mechanism in roofline terms."""
    from repro.kernels.counts import sptrsv_csr_counts, \
        sptrsv_dbsr_counts

    csr, dbsr = reordered_3d
    ai_csr = arithmetic_intensity(sptrsv_csr_counts(csr), INTEL_XEON)
    ai_dbsr = arithmetic_intensity(sptrsv_dbsr_counts(dbsr, True),
                                   INTEL_XEON)
    assert ai_dbsr > ai_csr


def test_dense_fma_kernel_compute_bound():
    c = OpCounter(bsize=8, vfma=10**6, bytes_vector=1000)
    pt = roofline_point(c, INTEL_XEON, threads=1)
    assert not pt.memory_bound
