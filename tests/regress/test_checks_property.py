"""Hypothesis properties for the tolerance comparator and paths."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regress.checks import (
    compare,
    extract_path,
    is_missing,
    ratchet,
    split_path,
    tolerance_bounds,
)

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)
positive = st.floats(min_value=1e-9, max_value=1e9,
                     allow_nan=False, allow_infinity=False)
lower_tol = st.floats(min_value=-1.0, max_value=0.0,
                      allow_nan=False)
upper_tol = st.floats(min_value=0.0, max_value=5.0,
                      allow_nan=False)
direction = st.sampled_from([None, "lower", "higher"])


# -- comparator ------------------------------------------------------------

@given(reference=finite, lower=lower_tol, upper=upper_tol)
def test_reference_always_within_own_band(reference, lower, upper):
    assert compare(reference, reference, lower, upper)


@given(reference=finite, lower=lower_tol, upper=upper_tol)
def test_bounds_ordered(reference, lower, upper):
    lo, hi = tolerance_bounds(reference, lower, upper)
    assert lo <= reference <= hi


@given(value=finite, reference=positive, lower=lower_tol,
       upper=upper_tol)
def test_compare_matches_bounds(value, reference, lower, upper):
    lo, hi = tolerance_bounds(reference, lower, upper)
    assert compare(value, reference, lower, upper) == \
        (lo <= value <= hi)


@given(value=finite, lower=lower_tol, upper=upper_tol)
def test_zero_reference_admits_only_zero(value, lower, upper):
    assert compare(value, 0.0, lower, upper) == (value == 0.0)


@given(reference=finite, lower=lower_tol, upper=upper_tol)
def test_nan_never_passes(reference, lower, upper):
    assert not compare(math.nan, reference, lower, upper)
    assert not compare(reference, math.nan, lower, upper)


@given(value=finite, reference=positive, lower=lower_tol,
       upper=upper_tol, scale=st.floats(min_value=1.0, max_value=10.0,
                                        allow_nan=False))
def test_widening_tolerances_never_unpasses(value, reference, lower,
                                            upper, scale):
    if compare(value, reference, lower, upper):
        assert compare(value, reference, lower * scale,
                       upper * scale)


# -- ratchet monotonicity --------------------------------------------------

@given(old=finite, measured=finite)
def test_ratchet_lower_never_loosens(old, measured):
    assert ratchet(old, measured, "lower") <= old


@given(old=finite, measured=finite)
def test_ratchet_higher_never_loosens(old, measured):
    assert ratchet(old, measured, "higher") >= old


@given(old=finite, measured=finite, direction=direction)
def test_ratchet_result_is_old_or_measured(old, measured, direction):
    assert ratchet(old, measured, direction) in (old, measured)


@given(measured=finite, direction=direction)
def test_ratchet_idempotent(measured, direction):
    once = ratchet(None, measured, direction)
    assert ratchet(once, measured, direction) == once


@given(old=finite, samples=st.lists(finite, min_size=1, max_size=8))
def test_ratchet_fold_is_order_insensitive_for_lower(old, samples):
    forward = old
    for s in samples:
        forward = ratchet(forward, s, "lower")
    assert forward == min([old] + samples)


# -- dotted-path extraction ------------------------------------------------

keys = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"),
                           whitelist_characters="_"),
    min_size=1, max_size=8)
scalars = st.one_of(st.integers(), finite, st.booleans(),
                    st.text(max_size=8))


@given(path_keys=st.lists(keys, min_size=1, max_size=5),
       value=scalars)
def test_roundtrip_nested_dicts(path_keys, value):
    doc = value
    for key in reversed(path_keys):
        doc = {key: doc}
    got = extract_path(doc, ".".join(path_keys))
    assert got == value or (isinstance(value, float)
                            and math.isnan(value)
                            and math.isnan(got))


@given(path_keys=st.lists(keys, min_size=1, max_size=5))
def test_split_then_join_preserves_tokens(path_keys):
    assert split_path(".".join(path_keys)) == path_keys


@given(path_keys=st.lists(keys, min_size=2, max_size=5),
       value=scalars)
def test_truncated_document_is_missing(path_keys, value):
    # Build one level less than the path asks for: the walk bottoms
    # out on a scalar and must report missing, never raise.
    doc = value
    for key in reversed(path_keys[:-1]):
        doc = {key: doc}
    assert is_missing(extract_path(doc, ".".join(path_keys)))


@settings(max_examples=50)
@given(index=st.integers(min_value=-20, max_value=20),
       items=st.lists(st.integers(), max_size=10))
def test_list_index_semantics_match_python(index, items):
    got = extract_path({"xs": items}, f"xs.{index}")
    if -len(items) <= index < len(items):
        assert got == items[index]
    else:
        assert is_missing(got)
