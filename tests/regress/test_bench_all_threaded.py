"""Concurrency: parallel `bench all` == sequential, exclusives apart."""

import json
import threading
import time

from repro.regress import run_bench_all
from repro.regress.registry import BenchEmitter


def _timed_registry(tmp_path, intervals, lock, sleep=0.02):
    def make(name, exclusive=False):
        def collect(seed=2024):
            start = time.perf_counter()
            time.sleep(sleep)
            with lock:
                intervals[name] = (start, time.perf_counter(),
                                   threading.get_ident())
            return {"schema": f"stub/{name}/v1", "name": name,
                    "seed": seed}

        schema = tmp_path / f"{name}.schema.json"
        schema.write_text(json.dumps({
            "type": "object",
            "required": ["schema", "name"],
            "properties": {"schema": {"const": f"stub/{name}/v1"}},
        }))
        return BenchEmitter(
            name=name, cli_command=name,
            out_default=str(tmp_path / f"BENCH_{name}.json"),
            schema_path=str(schema), collect=collect,
            exclusive=exclusive)

    return {
        "s1": make("s1"), "s2": make("s2"), "s3": make("s3"),
        "x1": make("x1", exclusive=True),
        "x2": make("x2", exclusive=True),
    }


def _strip_timing(report):
    clean = dict(report)
    clean.pop("elapsed_seconds")
    # The mode flag is the one config field allowed to differ.
    clean["config"] = {k: v for k, v in report["config"].items()
                       if k != "parallel"}
    return clean


def _run(tmp_path, parallel, intervals, lock):
    return run_bench_all(
        registry=_timed_registry(tmp_path, intervals, lock),
        checks=[], autotune=False, out=None, emit_individual=False,
        references_dir=tmp_path / "refs",
        machine_id="stub-1c-000000", parallel=parallel)


def test_parallel_equals_sequential(tmp_path):
    lock = threading.Lock()
    seq = _run(tmp_path, False, {}, lock)
    par = _run(tmp_path, True, {}, lock)
    assert _strip_timing(seq) == _strip_timing(par)
    assert par["config"]["parallel"] and not seq["config"]["parallel"]


def test_exclusive_emitters_never_overlap_others(tmp_path):
    lock = threading.Lock()
    intervals = {}
    report = _run(tmp_path, True, intervals, lock)
    assert report["ok"]
    assert set(intervals) == {"s1", "s2", "s3", "x1", "x2"}
    for xname in ("x1", "x2"):
        xs, xe, _ = intervals[xname]
        for other, (os_, oe, _) in intervals.items():
            if other == xname:
                continue
            assert xe <= os_ or oe <= xs, \
                f"{xname} overlapped {other}"


def test_parallel_actually_overlaps_shared(tmp_path):
    """The pool is real: with 3 shared emitters sleeping 20ms each,
    at least two run on distinct threads and their spans overlap."""
    lock = threading.Lock()
    intervals = {}
    _run(tmp_path, True, intervals, lock)
    shared = [intervals[n] for n in ("s1", "s2", "s3")]
    threads = {t for _, _, t in shared}
    assert len(threads) > 1
    overlaps = sum(
        1
        for i, (s_a, e_a, _) in enumerate(shared)
        for s_b, e_b, _ in shared[i + 1:]
        if s_a < e_b and s_b < e_a)
    assert overlaps >= 1


def test_sequential_runs_on_one_thread(tmp_path):
    lock = threading.Lock()
    intervals = {}
    _run(tmp_path, False, intervals, lock)
    assert len({t for _, _, t in intervals.values()}) == 1
