"""`bench all`: merged report, regression exit, fault canary."""

import json
from pathlib import Path

import pytest

from repro.regress import PerfCheck, run_bench_all
from repro.regress.bench_all import BENCH_ALL_SCHEMA, summarize
from repro.regress.references import store_references
from repro.regress.registry import BenchEmitter

REPO_ROOT = Path(__file__).resolve().parents[2]
SCHEMA_PATH = Path(__file__).with_name("bench_all.schema.json")


def _stub_schema(tmp_path, schema_id):
    path = tmp_path / f"{schema_id.replace('/', '_')}.schema.json"
    path.write_text(json.dumps({
        "type": "object",
        "required": ["schema", "value"],
        "properties": {"schema": {"const": schema_id}},
    }))
    return str(path)


def _stub_registry(tmp_path):
    def make(name, value, exclusive=False):
        def collect(seed=2024, scale=1):
            return {"schema": f"stub/{name}/v1",
                    "value": value * scale, "seed": seed}

        return BenchEmitter(
            name=name, cli_command=name,
            out_default=str(tmp_path / f"BENCH_{name}.json"),
            schema_path=_stub_schema(tmp_path, f"stub/{name}/v1"),
            collect=collect, quick_kwargs={"scale": 1},
            exclusive=exclusive)

    return {"alpha": make("alpha", 1.0),
            "beta": make("beta", 2.0),
            "gamma": make("gamma", 3.0, exclusive=True)}


def _stub_checks():
    return [PerfCheck(f"{name}.value", name, "value", lower=-0.5,
                      upper=0.5, better="lower")
            for name in ("alpha", "beta", "gamma")]


def _run(tmp_path, **kwargs):
    kwargs.setdefault("registry", _stub_registry(tmp_path))
    kwargs.setdefault("checks", _stub_checks())
    kwargs.setdefault("references_dir", tmp_path / "refs")
    kwargs.setdefault("autotune", False)
    kwargs.setdefault("out", None)
    kwargs.setdefault("emit_individual", False)
    kwargs.setdefault("machine_id", "stub-1c-000000")
    return run_bench_all(**kwargs)


def test_merged_report_structure(tmp_path):
    report = _run(tmp_path)
    assert report["schema"] == BENCH_ALL_SCHEMA
    assert set(report["reports"]) == {"alpha", "beta", "gamma"}
    assert all(v == "valid" for v in report["validation"].values())
    # No references yet: perf checks are reported, not failed.
    assert all(c["status"] == "no_reference"
               for c in report["checks"])
    assert report["regressions"] == []
    assert report["ok"]
    assert report["machine"]["id"] == "stub-1c-000000"


def test_only_and_skip(tmp_path):
    report = _run(tmp_path, only=["alpha", "beta"], skip=["beta"])
    assert set(report["reports"]) == {"alpha"}
    # Checks for absent reports are dropped, not failed.
    assert [c["name"] for c in report["checks"]] == ["alpha.value"]


def test_unknown_only_raises(tmp_path):
    with pytest.raises(KeyError):
        _run(tmp_path, only=["alpha", "zzz"])


def test_update_then_clean_then_regression(tmp_path):
    captured = _run(tmp_path, update_references=True)
    assert all(c["status"] == "captured"
               for c in captured["checks"])
    clean = _run(tmp_path)
    assert clean["ok"] and not clean["regressions"]
    assert all(c["status"] == "pass" for c in clean["checks"])

    # Perturb one emitter beyond +50%: exit signal names the check.
    registry = _stub_registry(tmp_path)
    slow = {"beta": BenchEmitter(
        name="beta", cli_command="beta",
        out_default=registry["beta"].out_default,
        schema_path=registry["beta"].schema_path,
        collect=lambda seed=2024, scale=1: {
            "schema": "stub/beta/v1", "value": 4.0, "seed": seed})}
    regressed = _run(tmp_path, registry={**registry, **slow})
    assert not regressed["ok"]
    assert regressed["regressions"] == ["beta.value"]
    assert "REGRESSION beta.value" in summarize(regressed)


def test_ratchet_via_update_never_loosens(tmp_path):
    store_references(tmp_path / "refs", "stub-1c-000000", "full",
                     {"alpha.value": 0.5, "beta.value": 2.0,
                      "gamma.value": 3.0})
    _run(tmp_path, update_references=True)
    doc = json.loads(
        (tmp_path / "refs" / "stub-1c-000000.json").read_text())
    # alpha measured 1.0 > stored 0.5 (lower-better): keeps 0.5.
    assert doc["values"]["full"]["alpha.value"] == 0.5
    assert doc["values"]["full"]["beta.value"] == 2.0


def test_schema_invalid_report_clears_ok(tmp_path):
    registry = _stub_registry(tmp_path)
    bad = {"alpha": BenchEmitter(
        name="alpha", cli_command="alpha",
        out_default=registry["alpha"].out_default,
        schema_path=registry["alpha"].schema_path,
        collect=lambda seed=2024, scale=1: {
            "schema": "stub/alpha/v1"})}  # missing "value"
    report = _run(tmp_path, registry={**registry, **bad},
                  checks=[])
    assert not report["ok"]
    assert "missing top-level key" in report["validation"]["alpha"]


def test_emit_artifacts(tmp_path):
    out = tmp_path / "BENCH_all.json"
    _run(tmp_path, out=str(out), emit_individual=True)
    merged = json.loads(out.read_text())
    assert merged["schema"] == BENCH_ALL_SCHEMA
    for name in ("alpha", "beta", "gamma"):
        assert (tmp_path / f"BENCH_{name}.json").is_file()


def test_quick_mode_references_are_separate(tmp_path):
    _run(tmp_path, update_references=True)              # full
    _run(tmp_path, quick=True, update_references=True)  # quick
    doc = json.loads(
        (tmp_path / "refs" / "stub-1c-000000.json").read_text())
    assert set(doc["values"]) == {"full", "quick"}


def test_committed_bench_all_is_schema_valid():
    """The golden merged artifact validates via schema_check."""
    from repro.observe.schema_check import validate_report

    bench_all = REPO_ROOT / "BENCH_all.json"
    assert bench_all.is_file(), "BENCH_all.json must be committed"
    report = json.loads(bench_all.read_text())
    validate_report(report, str(SCHEMA_PATH))
    assert set(report["reports"]) == {
        "runtime", "serve", "ilu", "chaos", "trace", "shard",
        "gateway", "gateway-chaos"}
    assert report["ok"]
    auto = report["autotune"]
    assert auto["gates"]["picks_match"]
    assert auto["gates"]["pruned_measures_at_most_2"]
    assert auto["compile_reduction"] > 0


def test_committed_bench_trace_artifact():
    """Satellite: BENCH_trace.json is committed like the other six."""
    from repro.observe.schema_check import validate_bench_trace

    path = REPO_ROOT / "BENCH_trace.json"
    assert path.is_file(), "BENCH_trace.json must be committed"
    validate_bench_trace(
        json.loads(path.read_text()),
        str(REPO_ROOT / "tests/observe/bench_trace.schema.json"))


@pytest.mark.bench
def test_committed_references_pass_clean():
    """`bench all --quick` against the committed baselines stays green
    (CI semantics: ci-default references, loose tolerances)."""
    report = run_bench_all(
        quick=True, out=None, emit_individual=False,
        references_dir=str(REPO_ROOT / "references"),
        machine_id="ci-default", tolerance_scale=3.0)
    assert report["config"]["references_source"] == "ci-default"
    assert report["regressions"] == []
    assert report["ok"], summarize(report)


@pytest.mark.chaos
def test_injected_delay_fault_trips_named_check(tmp_path):
    """Acceptance canary: a synthetic kernel delay must exit nonzero
    with the offending check named, against references captured clean
    moments before."""
    common = dict(quick=True, only=["serve"], autotune=False,
                  out=None, emit_individual=False,
                  references_dir=tmp_path,
                  machine_id="canary-1c-000000")
    clean = run_bench_all(update_references=True, **common)
    assert clean["ok"]
    slowed = run_bench_all(fault="kernel_delay", **common)
    assert not slowed["ok"]
    assert "serve.solve.seconds" in slowed["regressions"]
    named = [c for c in slowed["checks"]
             if c["name"] == "serve.solve.seconds"]
    assert named[0]["status"] == "fail"
    assert "outside" in named[0]["message"]


def test_unknown_fault_rejected(tmp_path):
    with pytest.raises(ValueError):
        _run(tmp_path, fault="bitrot")
