"""Machine fingerprint / id derivation."""

import re

from repro.regress.machine import machine_fingerprint, machine_id


def test_fingerprint_fields():
    fp = machine_fingerprint()
    assert set(fp) == {"arch", "cores", "cpu_model", "system"}
    assert fp["cores"] >= 1
    assert fp["arch"]


def test_machine_id_shape():
    mid = machine_id()
    assert re.fullmatch(r"[\w.-]+-\d+c-[0-9a-f]{6}", mid), mid


def test_machine_id_deterministic():
    assert machine_id() == machine_id()
    fp = machine_fingerprint()
    assert machine_id(fp) == machine_id(dict(fp))


def test_machine_id_distinguishes_cpu_model():
    fp = machine_fingerprint()
    other = dict(fp, cpu_model=fp["cpu_model"] + "-other")
    assert machine_id(fp) != machine_id(other)
    # ... but shares the human-readable prefix.
    assert machine_id(fp).rsplit("-", 1)[0] == \
        machine_id(other).rsplit("-", 1)[0]


def test_machine_id_distinguishes_core_count():
    fp = machine_fingerprint()
    other = dict(fp, cores=fp["cores"] + 1)
    assert machine_id(fp) != machine_id(other)
