"""Reference-file storage, resolution order, and mode keying."""

import json

import pytest

from repro.regress.references import (
    FALLBACK_ID,
    REFERENCES_SCHEMA,
    load_reference_file,
    reference_path,
    resolve_references,
    store_references,
)


def test_store_then_load_roundtrip(tmp_path):
    path = store_references(tmp_path, "archy-4c-abc123", "full",
                            {"a.seconds": 1.5, "b.rate": 0.9},
                            fingerprint={"arch": "archy"})
    assert path == reference_path(tmp_path, "archy-4c-abc123")
    doc = load_reference_file(path)
    assert doc["schema"] == REFERENCES_SCHEMA
    assert doc["machine_id"] == "archy-4c-abc123"
    assert doc["values"]["full"] == {"a.seconds": 1.5, "b.rate": 0.9}


def test_store_keeps_other_mode(tmp_path):
    store_references(tmp_path, "m1", "full", {"x": 1.0})
    store_references(tmp_path, "m1", "quick", {"x": 0.5})
    doc = load_reference_file(reference_path(tmp_path, "m1"))
    assert doc["values"] == {"full": {"x": 1.0}, "quick": {"x": 0.5}}


def test_store_drops_none_values(tmp_path):
    store_references(tmp_path, "m1", "full", {"x": 1.0, "y": None})
    values, _ = resolve_references(tmp_path, "m1", "full")
    assert values == {"x": 1.0}


def test_resolution_prefers_exact_machine(tmp_path):
    store_references(tmp_path, FALLBACK_ID, "full", {"x": 9.0})
    store_references(tmp_path, "m1", "full", {"x": 1.0})
    values, source = resolve_references(tmp_path, "m1", "full")
    assert (values, source) == ({"x": 1.0}, "m1")


def test_resolution_falls_back_to_ci_default(tmp_path):
    store_references(tmp_path, FALLBACK_ID, "full", {"x": 9.0})
    values, source = resolve_references(tmp_path, "unknown-1c-ffffff",
                                        "full")
    assert (values, source) == ({"x": 9.0}, FALLBACK_ID)


def test_resolution_missing_everything(tmp_path):
    values, source = resolve_references(tmp_path, "m1", "full")
    assert values == {} and source is None


def test_modes_do_not_mix(tmp_path):
    store_references(tmp_path, "m1", "full", {"x": 1.0})
    values, source = resolve_references(tmp_path, "m1", "quick")
    assert values == {} and source == "m1"


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "other/v1", "values": {}}))
    with pytest.raises(ValueError):
        load_reference_file(path)


def test_load_rejects_missing_values(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": REFERENCES_SCHEMA}))
    with pytest.raises(ValueError):
        load_reference_file(path)


def test_values_sorted_for_stable_diffs(tmp_path):
    path = store_references(tmp_path, "m1", "full",
                            {"z": 1.0, "a": 2.0, "m": 3.0})
    text = path.read_text()
    assert text.index('"a"') < text.index('"m"') < text.index('"z"')
