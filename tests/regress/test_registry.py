"""The bench-emitter registry: completeness, presets, CLI hoisting."""

import argparse
import importlib
from pathlib import Path

import pytest

from repro.regress.registry import (
    COMMON_FLAGS,
    EMITTER_ORDER,
    REGISTRY,
    BenchEmitter,
    add_common_bench_args,
    get_emitter,
    resolve_common_kwargs,
    run_emitter,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

EXPECTED_EMITTERS = {"runtime", "serve", "chaos", "trace", "shard",
                     "gateway", "ilu", "gateway-chaos"}


def test_registry_covers_all_emitters():
    assert set(REGISTRY) == EXPECTED_EMITTERS
    assert set(EMITTER_ORDER) == EXPECTED_EMITTERS


def test_collector_specs_import():
    for emitter in REGISTRY.values():
        fn = emitter.collector()
        assert callable(fn), emitter.name


def test_quick_kwargs_are_accepted_by_collectors():
    import inspect

    for emitter in REGISTRY.values():
        params = inspect.signature(emitter.collector()).parameters
        for key in emitter.quick_kwargs:
            assert key in params, f"{emitter.name}: {key}"
        if emitter.supports_seed:
            assert "seed" in params, emitter.name
        if emitter.supports_backend:
            assert "backend" in params, emitter.name


def test_schema_paths_exist():
    for emitter in REGISTRY.values():
        assert (REPO_ROOT / emitter.schema_path).is_file(), \
            emitter.schema_path


def test_out_defaults_unique():
    outs = [e.out_default for e in REGISTRY.values()]
    assert len(outs) == len(set(outs))


def test_global_state_emitters_are_exclusive():
    # Installing the tracer / arming the fault injector is global;
    # these three must never run concurrently with anything.
    exclusive = {n for n, e in REGISTRY.items() if e.exclusive}
    assert exclusive == {"trace", "chaos", "gateway-chaos"}


def test_cli_commands_match_cli_parser():
    from repro.cli import build_parser

    sub = next(a for a in build_parser()._actions
               if isinstance(a, argparse._SubParsersAction))
    for emitter in REGISTRY.values():
        assert emitter.cli_command in sub.choices, emitter.cli_command


def test_get_emitter_unknown():
    with pytest.raises(KeyError):
        get_emitter("zzz")


def test_run_emitter_with_callable_and_overrides():
    seen = {}

    def fake(seed=0, nx=1, backend="numpy-fast"):
        seen.update(seed=seed, nx=nx, backend=backend)
        return {"ok": True}

    table = {"fake": BenchEmitter(
        name="fake", cli_command="fake", out_default="x.json",
        schema_path="nope.json", collect=fake,
        quick_kwargs={"nx": 2}, supports_backend=True)}
    report = run_emitter("fake", quick=True, seed=7,
                         backend="numpy-counted", registry=table,
                         overrides={"nx": 3})
    assert report == {"ok": True}
    assert seen == {"seed": 7, "nx": 3, "backend": "numpy-counted"}


def test_seed_backend_not_forwarded_when_unsupported():
    seen = {}

    def fake(**kwargs):
        seen.update(kwargs)
        return {}

    table = {"fake": BenchEmitter(
        name="fake", cli_command="fake", out_default="x.json",
        schema_path="nope.json", collect=fake,
        supports_seed=False, supports_backend=False)}
    run_emitter("fake", seed=7, backend="numba", registry=table)
    assert seen == {}


def test_add_common_bench_args_flags():
    for emitter in REGISTRY.values():
        parser = argparse.ArgumentParser()
        add_common_bench_args(parser, emitter)
        flags = {a for action in parser._actions
                 for a in action.option_strings}
        assert "--out" in flags
        assert ("--seed" in flags) == emitter.supports_seed
        assert ("--backend" in flags) == emitter.supports_backend
        assert flags - {"-h", "--help"} <= set(COMMON_FLAGS)
        args = parser.parse_args([])
        assert args.out == emitter.out_default
        kwargs = resolve_common_kwargs(emitter, args)
        if emitter.supports_seed:
            assert kwargs["seed"] == 2024
        if emitter.supports_backend:
            assert kwargs["backend"] == "numpy-fast"


def test_every_bench_cli_command_has_uniform_flags():
    """The satellite pin: no bench subcommand hand-rolls --out/--seed."""
    from repro.cli import build_parser

    sub = next(a for a in build_parser()._actions
               if isinstance(a, argparse._SubParsersAction))
    for emitter in REGISTRY.values():
        sp = sub.choices[emitter.cli_command]
        flags = {a for action in sp._actions
                 for a in action.option_strings}
        assert "--out" in flags, emitter.cli_command
        if emitter.supports_seed:
            assert "--seed" in flags, emitter.cli_command
        if emitter.supports_backend:
            assert "--backend" in flags, emitter.cli_command
        defaults = {action.dest: action.default
                    for action in sp._actions}
        assert defaults.get("out") == emitter.out_default
        if emitter.supports_seed:
            assert defaults.get("seed") == 2024
