"""PerfCheck extraction, comparison, and evaluation unit tests."""

import math

import pytest

from repro.regress.checks import (
    CheckResult,
    PerfCheck,
    compare,
    evaluate_check,
    evaluate_checks,
    extract_path,
    is_missing,
    ratchet,
    split_path,
    tolerance_bounds,
)

REPORT = {
    "kernels": {"sptrsv": {"seconds": 0.5, "flops": 100}},
    "phases": {"solve": {"seconds": 0.25}},
    "scenarios": [
        {"name": "a", "recovered": True},
        {"name": "serve.solve", "added": 3.5},
    ],
    "flags": {"ok": True, "none": None},
}


# -- path syntax -----------------------------------------------------------

def test_split_plain_dotted():
    assert split_path("kernels.sptrsv.seconds") == \
        ["kernels", "sptrsv", "seconds"]


def test_split_bracket_selector_is_atomic():
    # The selector value contains a dot; it must not split.
    assert split_path("scenarios.[name=serve.solve].added") == \
        ["scenarios", "[name=serve.solve]", "added"]


def test_split_rejects_unclosed_selector():
    with pytest.raises(ValueError):
        split_path("scenarios.[name=serve")


def test_split_rejects_empty():
    with pytest.raises(ValueError):
        split_path("")


def test_extract_nested():
    assert extract_path(REPORT, "kernels.sptrsv.seconds") == 0.5


def test_extract_list_index():
    assert extract_path(REPORT, "scenarios.0.recovered") is True
    assert extract_path(REPORT, "scenarios.1.added") == 3.5


def test_extract_selector():
    assert extract_path(
        REPORT, "scenarios.[name=serve.solve].added") == 3.5


def test_extract_missing_is_sentinel_not_none():
    assert is_missing(extract_path(REPORT, "kernels.zzz.seconds"))
    assert is_missing(extract_path(REPORT, "scenarios.7.name"))
    assert is_missing(extract_path(REPORT, "scenarios.[name=zzz].x"))
    # A stored None is a value, not a missing path.
    assert extract_path(REPORT, "flags.none") is None
    assert not is_missing(extract_path(REPORT, "flags.none"))


def test_extract_type_mismatch_is_missing():
    assert is_missing(extract_path(REPORT, "flags.ok.deeper"))
    assert is_missing(extract_path(REPORT, "kernels.0"))


# -- comparator ------------------------------------------------------------

def test_bounds_asymmetric():
    lo, hi = tolerance_bounds(10.0, -0.1, 0.5)
    assert lo == pytest.approx(9.0)
    assert hi == pytest.approx(15.0)


def test_bounds_negative_reference_orients_correctly():
    lo, hi = tolerance_bounds(-10.0, -0.1, 0.5)
    assert lo == pytest.approx(-11.0)
    assert hi == pytest.approx(-5.0)
    assert lo < hi


def test_compare_inside_outside():
    assert compare(9.0, 10.0, -0.1, 0.5)
    assert compare(15.0, 10.0, -0.1, 0.5)
    assert not compare(8.99, 10.0, -0.1, 0.5)
    assert not compare(15.01, 10.0, -0.1, 0.5)


def test_compare_zero_reference_only_admits_zero():
    assert compare(0.0, 0.0, -0.5, 0.5)
    assert not compare(1e-12, 0.0, -0.5, 0.5)


def test_compare_nan_and_inf_fail():
    assert not compare(math.nan, 1.0, -1.0, 1.0)
    assert not compare(1.0, math.nan, -1.0, 1.0)
    assert not compare(math.inf, 1.0, -1.0, 1.0)
    assert not compare("bogus", 1.0, -1.0, 1.0)


# -- ratchet ---------------------------------------------------------------

def test_ratchet_first_capture():
    assert ratchet(None, 2.0, "lower") == 2.0
    assert ratchet(None, 2.0, None) == 2.0


def test_ratchet_only_tightens():
    assert ratchet(2.0, 1.0, "lower") == 1.0   # faster -> adopt
    assert ratchet(1.0, 2.0, "lower") == 1.0   # slower -> keep
    assert ratchet(1.0, 2.0, "higher") == 2.0  # better -> adopt
    assert ratchet(2.0, 1.0, "higher") == 2.0  # worse -> keep
    assert ratchet(1.0, 99.0, None) == 1.0     # pinned -> keep


def test_ratchet_ignores_bad_samples():
    assert ratchet(1.0, math.nan, "lower") == 1.0
    assert ratchet(None, math.inf, "lower") is None


# -- PerfCheck validation --------------------------------------------------

def test_perfcheck_rejects_bad_tolerances():
    with pytest.raises(ValueError):
        PerfCheck("x", "r", "a.b", lower=0.1, upper=0.5)
    with pytest.raises(ValueError):
        PerfCheck("x", "r", "a.b", lower=-0.5, upper=-0.1)


def test_perfcheck_rejects_bad_kind_and_better():
    with pytest.raises(ValueError):
        PerfCheck("x", "r", "a.b", kind="vibes")
    with pytest.raises(ValueError):
        PerfCheck("x", "r", "a.b", better="sideways")


def test_perfcheck_rejects_malformed_path_eagerly():
    with pytest.raises(ValueError):
        PerfCheck("x", "r", "a.[broken")


def test_scaled_widens_band():
    c = PerfCheck("x", "r", "a.b", lower=-0.1, upper=0.5)
    s = c.scaled(3.0)
    assert s.lower == pytest.approx(-0.3)
    assert s.upper == pytest.approx(1.5)
    assert c.scaled(1.0) is c
    with pytest.raises(ValueError):
        c.scaled(0.0)


# -- evaluation ------------------------------------------------------------

def _reports():
    return {"serve": {"phases": {"solve": {"seconds": 0.25}},
                      "flags": {"bitwise": True}}}


def test_evaluate_pass_and_fail():
    check = PerfCheck("serve.solve", "serve", "phases.solve.seconds",
                      lower=-0.5, upper=0.5, better="lower")
    ok = evaluate_check(check, _reports(), {"serve.solve": 0.25})
    assert ok.status == "pass" and ok.ok and not ok.failed
    bad = evaluate_check(check, _reports(), {"serve.solve": 0.1})
    assert bad.status == "fail" and bad.failed
    assert "serve.solve" in bad.message


def test_evaluate_no_reference_passes_with_note():
    check = PerfCheck("serve.solve", "serve", "phases.solve.seconds")
    r = evaluate_check(check, _reports(), {})
    assert r.status == "no_reference" and r.ok


def test_evaluate_missing_value_fails_required():
    check = PerfCheck("nope", "serve", "phases.zzz.seconds")
    r = evaluate_check(check, _reports(), {})
    assert r.status == "missing_value" and r.failed
    optional = PerfCheck("nope2", "serve", "phases.zzz.seconds",
                         required=False)
    r2 = evaluate_check(optional, _reports(), {})
    assert r2.status == "missing_value" and r2.ok and not r2.failed


def test_evaluate_missing_report():
    check = PerfCheck("gone", "shard", "ok")
    r = evaluate_check(check, _reports(), {})
    assert r.status == "missing_value" and "shard" in r.message


def test_evaluate_gate_truthiness_and_equals():
    gate = PerfCheck("bw", "serve", "flags.bitwise", kind="gate")
    assert evaluate_check(gate, _reports(), {}).status == "gate_pass"
    eq = PerfCheck("solve-is", "serve", "phases.solve.seconds",
                   kind="gate", equals=0.25)
    assert evaluate_check(eq, _reports(), {}).status == "gate_pass"
    ne = PerfCheck("solve-not", "serve", "phases.solve.seconds",
                   kind="gate", equals=0.5)
    r = evaluate_check(ne, _reports(), {})
    assert r.status == "gate_fail" and r.failed


def test_evaluate_tolerance_scale_rescues_near_miss():
    check = PerfCheck("serve.solve", "serve", "phases.solve.seconds",
                      lower=-0.1, upper=0.1, better="lower")
    refs = {"serve.solve": 0.2}  # measured 0.25 is a +25% miss
    assert evaluate_check(check, _reports(), refs).status == "fail"
    assert evaluate_check(check, _reports(), refs,
                          tolerance_scale=3.0).status == "pass"


def test_evaluate_update_captures_and_ratchets():
    check = PerfCheck("serve.solve", "serve", "phases.solve.seconds",
                      better="lower")
    results, updated = evaluate_checks([check], _reports(), {},
                                       update=True)
    assert results[0].status == "captured"
    assert updated == {"serve.solve": 0.25}
    # A second capture against a faster old baseline keeps it.
    _, updated2 = evaluate_checks([check], _reports(),
                                  {"serve.solve": 0.1}, update=True)
    assert updated2 == {"serve.solve": 0.1}


def test_evaluate_checks_rejects_duplicate_names():
    check = PerfCheck("dup", "serve", "phases.solve.seconds")
    with pytest.raises(ValueError):
        evaluate_checks([check, check], _reports(), {})


def test_result_to_dict_is_json_safe():
    import json

    check = PerfCheck("x", "serve", "phases.solve.seconds")
    r = CheckResult(check, "fail", value=math.nan, reference=1.0,
                    bounds=(0.5, math.inf))
    json.dumps(r.to_dict())  # must not raise
    assert r.to_dict()["value"] == "nan"
