"""Unit tests for CG."""

import numpy as np

from repro.solvers.cg import cg


def test_cg_solves_spd(problem_2d_5pt):
    p = problem_2d_5pt
    x, hist = cg(p.matrix, p.rhs, tol=1e-10, maxiter=500)
    assert hist.converged
    assert np.allclose(x, p.exact, atol=1e-7)


def test_cg_exact_in_n_iterations():
    """CG terminates in at most n steps in exact arithmetic."""
    from repro.formats.csr import CSRMatrix

    A = CSRMatrix.from_dense(np.diag([1.0, 2.0, 3.0, 4.0]))
    b = np.ones(4)
    x, hist = cg(A, b, tol=1e-14, maxiter=10)
    assert hist.iterations <= 4
    assert np.allclose(x, 1.0 / np.diag(A.to_dense()))


def test_cg_residual_history_decreasing_overall(problem_2d_5pt):
    p = problem_2d_5pt
    _, hist = cg(p.matrix, p.rhs, tol=1e-10)
    assert hist.residuals[-1] < hist.residuals[0] * 1e-9


def test_cg_initial_guess(problem_2d_5pt):
    p = problem_2d_5pt
    x, hist = cg(p.matrix, p.rhs, x0=p.exact, tol=1e-10)
    assert hist.iterations == 0
    assert hist.converged


def test_cg_maxiter_not_converged(problem_2d_5pt):
    p = problem_2d_5pt
    _, hist = cg(p.matrix, p.rhs, tol=1e-14, maxiter=2)
    assert not hist.converged
    assert hist.iterations <= 2


def test_cg_zero_rhs(problem_2d_5pt):
    x, hist = cg(problem_2d_5pt.matrix,
                 np.zeros(problem_2d_5pt.n), tol=1e-10)
    assert np.allclose(x, 0.0)
