"""Numerical guardrails inside the Krylov loops."""

import numpy as np
import pytest

from repro.resilience.errors import NonFiniteError, SolverBreakdown
from repro.solvers.cg import cg
from repro.solvers.guards import (
    check_curvature,
    check_residual,
    check_rho,
)
from repro.solvers.pcg import pcg

pytestmark = pytest.mark.chaos


class _Dense:
    def __init__(self, A):
        self.A = np.asarray(A, dtype=float)

    def matvec(self, x):
        return self.A @ x


def _spd(n=12, seed=0):
    rng = np.random.default_rng(seed)
    Q = rng.standard_normal((n, n))
    return Q @ Q.T + n * np.eye(n)


# Guard primitives ---------------------------------------------------------

def test_check_residual_passes_through_finite():
    assert check_residual(1.5, 0, 2.0) == 1.5


def test_check_residual_raises_with_context():
    with pytest.raises(NonFiniteError) as ei:
        check_residual(float("nan"), iteration=7, last_good=0.25)
    assert ei.value.iteration == 7
    assert ei.value.last_residual == 0.25


def test_check_curvature_rejects_indefinite():
    with pytest.raises(SolverBreakdown) as ei:
        check_curvature(-1e-3, iteration=2, last_good=1.0)
    assert ei.value.reason == "indefinite_operator"
    check_curvature(1e-3, iteration=2, last_good=1.0)  # fine


def test_check_rho_rejects_zero_and_nonfinite():
    with pytest.raises(SolverBreakdown) as ei:
        check_rho(0.0, iteration=3, last_good=1.0)
    assert ei.value.reason == "rho_breakdown"
    with pytest.raises(NonFiniteError):
        check_rho(float("inf"), iteration=3, last_good=1.0)


# In-loop behavior ---------------------------------------------------------

def test_cg_clean_spd_still_converges():
    A = _spd()
    b = np.ones(12)
    x, hist = cg(_Dense(A), b, tol=1e-10)
    assert np.allclose(A @ x, b, atol=1e-7)


def test_cg_nan_operator_raises_before_iterating():
    """A NaN in A poisons the very first residual: iteration -1."""
    A = _spd()
    A[3, 4] = np.nan
    with pytest.raises(NonFiniteError) as ei:
        cg(_Dense(A), np.ones(12), maxiter=50)
    assert ei.value.iteration == -1


class _DecayingOperator(_Dense):
    """Healthy for the first matvec, NaN afterwards (mid-run fault)."""

    def __init__(self, A):
        super().__init__(A)
        self.calls = 0

    def matvec(self, x):
        self.calls += 1
        y = super().matvec(x)
        if self.calls > 1:
            y[0] = np.nan
        return y


def test_cg_midrun_corruption_reports_iteration_and_last_good():
    A = _DecayingOperator(_spd())
    with pytest.raises(NonFiniteError) as ei:
        cg(A, np.ones(12), maxiter=50)
    assert ei.value.iteration >= 0
    # The last residual known finite is reported for triage.
    assert np.isfinite(ei.value.last_residual)


def test_cg_indefinite_operator_raises_breakdown():
    A = -_spd()  # negative definite: p.Ap < 0 on the first iteration
    with pytest.raises(SolverBreakdown) as ei:
        cg(_Dense(A), np.ones(12), maxiter=50)
    assert ei.value.reason == "indefinite_operator"


def test_pcg_nan_preconditioner_raises_nonfinite():
    A = _spd()

    def bad_precond(r):
        z = r.copy()
        z[0] = np.nan
        return z

    with pytest.raises(NonFiniteError):
        pcg(_Dense(A), np.ones(12), bad_precond, maxiter=50)


def test_pcg_exact_convergence_is_not_a_rho_breakdown():
    """rz == 0 at exact convergence must exit cleanly, not raise."""
    A = np.eye(4)
    b = np.array([1.0, 2.0, 3.0, 4.0])
    x, hist = pcg(_Dense(A), b, lambda r: r, tol=1e-12, maxiter=10)
    assert np.allclose(x, b)


def test_breakdown_errors_are_importable_from_solvers():
    import repro.solvers as solvers

    assert solvers.NonFiniteError is NonFiniteError
    assert solvers.SolverBreakdown is SolverBreakdown
