"""Unit tests for the preconditioned Richardson iteration."""

import numpy as np

from repro.solvers.stationary import preconditioned_richardson


def test_converges_with_ilu(problem_2d):
    from repro.ilu.ilu0_csr import ilu0_apply_csr, ilu0_factorize_csr

    p = problem_2d
    f = ilu0_factorize_csr(p.matrix)
    x, hist = preconditioned_richardson(
        p.matrix, p.rhs, lambda r: ilu0_apply_csr(f, r),
        tol=1e-10, maxiter=200)
    assert hist.converged
    assert np.allclose(x, p.exact, atol=1e-7)


def test_exact_preconditioner_converges_instantly(problem_2d_5pt):
    p = problem_2d_5pt
    dense = p.matrix.to_dense()
    x, hist = preconditioned_richardson(
        p.matrix, p.rhs, lambda r: np.linalg.solve(dense, r),
        tol=1e-12, maxiter=10)
    assert hist.iterations <= 2


def test_iteration_count_reflects_preconditioner_quality(problem_2d):
    """Weaker preconditioner (Jacobi) needs more iterations than ILU."""
    from repro.ilu.ilu0_csr import ilu0_apply_csr, ilu0_factorize_csr

    p = problem_2d
    diag = p.matrix.diagonal()
    f = ilu0_factorize_csr(p.matrix)
    _, h_jac = preconditioned_richardson(
        p.matrix, p.rhs, lambda r: r / diag, tol=1e-8, maxiter=2000)
    _, h_ilu = preconditioned_richardson(
        p.matrix, p.rhs, lambda r: ilu0_apply_csr(f, r),
        tol=1e-8, maxiter=2000)
    assert h_ilu.iterations < h_jac.iterations


def test_history_reduction_rate(problem_2d):
    from repro.ilu.ilu0_csr import ilu0_apply_csr, ilu0_factorize_csr

    p = problem_2d
    f = ilu0_factorize_csr(p.matrix)
    _, hist = preconditioned_richardson(
        p.matrix, p.rhs, lambda r: ilu0_apply_csr(f, r),
        tol=1e-10, maxiter=200)
    assert 0 < hist.reduction_per_iteration() < 1
