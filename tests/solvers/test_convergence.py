"""Unit tests for convergence tracking."""

import numpy as np
import pytest

from repro.solvers.convergence import ConvergenceHistory, \
    rel_residual_norm


def test_iterations_excludes_initial():
    h = ConvergenceHistory()
    assert h.iterations == 0
    h.record(1.0)
    assert h.iterations == 0
    h.record(0.1)
    assert h.iterations == 1


def test_endpoints():
    h = ConvergenceHistory()
    h.record(2.0)
    h.record(0.5)
    assert h.initial_residual == 2.0
    assert h.final_residual == 0.5


def test_empty_history_nan():
    h = ConvergenceHistory()
    assert np.isnan(h.initial_residual)
    assert np.isnan(h.final_residual)


def test_reduction_rate_geometric():
    h = ConvergenceHistory()
    for k in range(5):
        h.record(10.0 ** (-k))
    assert h.reduction_per_iteration() == pytest.approx(0.1)


def test_reduction_rate_degenerate():
    h = ConvergenceHistory()
    h.record(1.0)
    assert h.reduction_per_iteration() == 1.0
    z = ConvergenceHistory()
    z.record(0.0)
    z.record(0.0)
    assert z.reduction_per_iteration() == 1.0


def test_rel_residual_norm(problem_2d_5pt):
    p = problem_2d_5pt
    assert rel_residual_norm(p.matrix, p.exact, p.rhs) < 1e-14
    x0 = np.zeros(p.n)
    assert rel_residual_norm(p.matrix, x0, p.rhs) == pytest.approx(1.0)


def test_rel_residual_zero_rhs(problem_2d_5pt):
    p = problem_2d_5pt
    x = np.ones(p.n)
    val = rel_residual_norm(p.matrix, x, np.zeros(p.n))
    assert val == pytest.approx(
        float(np.linalg.norm(p.matrix.matvec(x))))
