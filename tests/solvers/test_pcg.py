"""Unit tests for preconditioned CG."""

import numpy as np

from repro.solvers.cg import cg
from repro.solvers.pcg import pcg


def test_identity_preconditioner_equals_cg(problem_2d_5pt):
    p = problem_2d_5pt
    x1, h1 = cg(p.matrix, p.rhs, tol=1e-10)
    x2, h2 = pcg(p.matrix, p.rhs, lambda r: r.copy(), tol=1e-10)
    assert h1.iterations == h2.iterations
    assert np.allclose(x1, x2)


def test_jacobi_preconditioner_reduces_iterations():
    """On a badly scaled SPD system, Jacobi PCG must beat plain CG."""
    from repro.formats.csr import CSRMatrix

    n = 40
    rng = np.random.default_rng(0)
    scales = 10.0 ** rng.uniform(-3, 3, n)
    dense = np.diag(scales)
    dense[0, 1] = dense[1, 0] = 0.1 * np.sqrt(scales[0] * scales[1])
    A = CSRMatrix.from_dense(dense)
    b = rng.standard_normal(n)
    diag = A.diagonal()
    _, h_plain = cg(A, b, tol=1e-10, maxiter=2000)
    _, h_jac = pcg(A, b, lambda r: r / diag, tol=1e-10, maxiter=2000)
    assert h_jac.iterations < h_plain.iterations


def test_ilu_preconditioned_pcg(problem_3d_27pt):
    from repro.ilu.ilu0_csr import ilu0_apply_csr, ilu0_factorize_csr

    p = problem_3d_27pt
    f = ilu0_factorize_csr(p.matrix)
    x, hist = pcg(p.matrix, p.rhs, lambda r: ilu0_apply_csr(f, r),
                  tol=1e-10, maxiter=100)
    assert hist.converged
    assert np.allclose(x, p.exact, atol=1e-6)
    _, h_plain = cg(p.matrix, p.rhs, tol=1e-10, maxiter=200)
    assert hist.iterations < h_plain.iterations


def test_history_records_true_residuals(problem_2d_5pt):
    p = problem_2d_5pt
    x, hist = pcg(p.matrix, p.rhs, lambda r: r.copy(), tol=1e-10)
    final = np.linalg.norm(p.rhs - p.matrix.matvec(x))
    assert np.isclose(final, hist.final_residual, rtol=1e-6, atol=1e-12)
