"""Unit tests for Permutation."""

import numpy as np
import pytest

from repro.ordering.permutation import Permutation


def test_identity():
    p = Permutation.identity(5)
    v = np.arange(5.0)
    assert np.array_equal(p.forward(v), v)
    assert np.array_equal(p.backward(v), v)


def test_forward_backward_inverse(rng):
    p = Permutation(rng.permutation(10))
    v = rng.standard_normal(10)
    assert np.allclose(p.backward(p.forward(v)), v)
    assert np.allclose(p.forward(p.backward(v)), v)


def test_forward_places_values():
    p = Permutation([2, 0, 1])
    v = np.array([10.0, 20.0, 30.0])
    out = p.forward(v)
    # old index 0 moves to new index 2, etc.
    assert np.array_equal(out, [20.0, 30.0, 10.0])


def test_from_new_to_old_consistent(rng):
    o2n = rng.permutation(8)
    p = Permutation(o2n)
    q = Permutation.from_new_to_old(p.new_to_old)
    assert p == q


def test_inverse(rng):
    p = Permutation(rng.permutation(8))
    v = rng.standard_normal(8)
    assert np.allclose(p.inverse().forward(v), p.backward(v))


def test_compose(rng):
    a = Permutation(rng.permutation(6))
    b = Permutation(rng.permutation(6))
    v = rng.standard_normal(6)
    assert np.allclose(a.compose(b).forward(v), b.forward(a.forward(v)))


def test_non_bijection_rejected():
    with pytest.raises(ValueError):
        Permutation([0, 0, 1])
    with pytest.raises(ValueError):
        Permutation([0, 3, 1])


def test_matrix_permutation_consistency(problem_2d, rng):
    """P A P^T moved via CSRMatrix.permute matches vector reordering."""
    A = problem_2d.matrix
    p = Permutation(rng.permutation(A.n_rows))
    Ap = A.permute(p.old_to_new)
    x = rng.standard_normal(A.n_rows)
    # (P A P^T)(P x) = P (A x)
    assert np.allclose(Ap.matvec(p.forward(x)), p.forward(A.matvec(x)))
