"""Direct unit tests for ordering/schedule_stats.py.

Built on synthetic :class:`ColorSchedule` pointers so each statistic
is pinned against hand-computed values (the property suite covers the
real VBMC schedules).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ordering.schedule_stats import ScheduleStats, schedule_stats
from repro.ordering.vbmc import ColorSchedule


def _sched(*groups_per_color):
    ptr = np.concatenate(([0], np.cumsum(groups_per_color)))
    return ColorSchedule(bsize=4, points_per_block=8,
                         color_group_ptr=ptr.astype(np.int64))


def test_stats_from_synthetic_schedule():
    st = schedule_stats(_sched(4, 2, 6))
    assert st.n_colors == 3
    assert st.n_groups == 12
    assert list(st.groups_per_color) == [4, 2, 6]
    assert st.min_parallelism == 2
    assert st.balance == pytest.approx(2 / 6)
    assert st.barriers_per_sweep == 3


def test_balanced_schedule_has_balance_one():
    st = schedule_stats(_sched(5, 5, 5))
    assert st.balance == 1.0
    assert st.min_parallelism == 5


def test_empty_schedule_edge_case():
    st = schedule_stats(_sched())
    assert st.n_colors == 0
    assert st.n_groups == 0
    assert st.min_parallelism == 0
    assert st.balance == 1.0
    assert st.barriers_per_sweep == 0


def test_speedup_bound_exact_for_unit_cost_groups():
    st = schedule_stats(_sched(4, 2, 6))
    # 2 workers: ceil(4/2)+ceil(2/2)+ceil(6/2) = 2+1+3 = 6 rounds.
    assert st.speedup_bound(2) == pytest.approx(12 / 6)
    # 4 workers: 1+1+2 = 4 rounds.
    assert st.speedup_bound(4) == pytest.approx(12 / 4)
    # One worker can never beat sequential.
    assert st.speedup_bound(1) == pytest.approx(1.0)


def test_speedup_bound_saturates_at_min_color_width():
    st = schedule_stats(_sched(8, 8))
    # Beyond 8 workers every color is one round: bound stops growing.
    assert st.speedup_bound(8) == st.speedup_bound(64) == 8.0


def test_speedup_bound_empty_schedule_is_one():
    assert schedule_stats(_sched()).speedup_bound(4) == 1.0


def test_rows_tabular_form():
    st = schedule_stats(_sched(3, 1))
    assert st.rows() == [(0, 3), (1, 1)]
    assert all(isinstance(g, int) for _, g in st.rows())


def test_stats_dataclass_is_plain_data():
    st = ScheduleStats(n_colors=1, n_groups=2,
                       groups_per_color=np.array([2]),
                       min_parallelism=2, balance=1.0,
                       barriers_per_sweep=1)
    assert st.speedup_bound(2) == 2.0
