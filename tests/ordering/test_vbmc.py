"""Unit tests for the vectorized BMC ordering (§III-A)."""

import numpy as np
import pytest

from repro.formats.dbsr import DBSRMatrix
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import box9_2d, star7_3d
from repro.ordering.vbmc import build_vbmc


def test_mapping_covers_all_points(vbmc_2d, problem_2d):
    vb = vbmc_2d
    assert vb.n_orig == problem_2d.n
    news = np.sort(vb.old_to_new)
    assert len(np.unique(news)) == vb.n_orig
    assert news.max() < vb.n_padded


def test_new_to_old_consistent(vbmc_2d):
    vb = vbmc_2d
    for new in range(vb.n_padded):
        old = vb.new_to_old[new]
        if old >= 0:
            assert vb.old_to_new[old] == new


def test_padded_size_multiple_of_group(vbmc_2d):
    vb = vbmc_2d
    assert vb.n_padded % (vb.bsize * vb.points_per_block) == 0


def test_lane_interleaving(problem_2d):
    """Points at the same intra-block position across a group get
    consecutive new indices — the defining property of Fig. 2(c)."""
    vb = build_vbmc(problem_2d.grid, problem_2d.stencil, (4, 4), 4)
    table = vb.partition.all_block_point_ids()
    schedule = vb.schedule
    ppb = vb.points_per_block
    for color in range(vb.n_colors):
        members = np.flatnonzero(vb.block_colors == color)
        for g_idx, group in enumerate(schedule.groups_of_color(color)):
            lanes = members[g_idx * vb.bsize:(g_idx + 1) * vb.bsize]
            for pos in range(ppb):
                news = [vb.old_to_new[table[blk][pos]] for blk in lanes]
                base = group * ppb * vb.bsize + pos * vb.bsize
                assert news == list(range(base, base + len(news)))


def test_color_priority_preserved(vbmc_2d):
    """Blocks of lower colors occupy lower new index ranges."""
    vb = vbmc_2d
    table = vb.partition.all_block_point_ids()
    max_new_per_color = []
    for color in range(vb.n_colors):
        members = np.flatnonzero(vb.block_colors == color)
        news = vb.old_to_new[table[members].ravel()]
        max_new_per_color.append((news.min(), news.max()))
    for (lo1, hi1), (lo2, hi2) in zip(max_new_per_color,
                                      max_new_per_color[1:]):
        assert hi1 < lo2


def test_extend_restrict_roundtrip(vbmc_2d, rng):
    vb = vbmc_2d
    v = rng.standard_normal(vb.n_orig)
    assert np.allclose(vb.restrict(vb.extend(v)), v)


def test_extend_fills_virtual_slots(vbmc_2d):
    vb = vbmc_2d
    out = vb.extend(np.ones(vb.n_orig), fill=7.0)
    virtual = vb.new_to_old < 0
    assert np.all(out[virtual] == 7.0)
    assert np.all(out[~virtual] == 1.0)


def test_apply_matrix_symmetric_permutation(problem_2d, vbmc_2d, rng):
    vb = vbmc_2d
    A = problem_2d.matrix
    Ap = vb.apply_matrix(A)
    x = rng.standard_normal(vb.n_orig)
    # (P A P^T)(P x) == P (A x) on real entries.
    y_new = Ap.matvec(vb.extend(x))
    assert np.allclose(vb.restrict(y_new), A.matvec(x))


def test_virtual_rows_identity(problem_2d, vbmc_2d):
    Ap = vbmc_2d.apply_matrix(problem_2d.matrix)
    virtual = np.flatnonzero(vbmc_2d.new_to_old < 0)
    dense = Ap.to_dense()
    for v in virtual:
        row = dense[v]
        assert row[v] == 1.0
        assert np.count_nonzero(row) == 1
        col = dense[:, v]
        assert np.count_nonzero(col) == 1


def test_padding_when_color_count_not_multiple():
    """3 blocks per color with bsize 2 needs one virtual block each."""
    g = StructuredGrid((6, 6))
    vb = build_vbmc(g, box9_2d(), (2, 2), 2)
    # 9 blocks of (3x3) block grid, 4 colors -> counts like 4/2/2/1.
    assert vb.n_padded > vb.n_orig
    assert vb.n_padded % (2 * 4) == 0


def test_bsize_one_is_classic_bmc(problem_2d):
    from repro.ordering.bmc import build_bmc

    vb = build_vbmc(problem_2d.grid, problem_2d.stencil, (4, 4), 1)
    bmc = build_bmc(problem_2d.grid, problem_2d.stencil, (4, 4))
    assert vb.n_padded == vb.n_orig
    assert np.array_equal(vb.old_to_new, bmc.perm.old_to_new)


def test_schedule_group_ranges(vbmc_2d):
    sched = vbmc_2d.schedule
    assert sched.n_groups == sched.color_group_ptr[-1]
    rows = []
    for g in range(sched.n_groups):
        rows.extend(sched.block_rows_of_group(g))
    assert rows == list(range(vbmc_2d.n_padded // sched.bsize))


def test_validate(vbmc_2d, vbmc_3d):
    assert vbmc_2d.validate()
    assert vbmc_3d.validate()


def test_dbsr_on_vbmc_is_diagonal_tiles(problem_3d_7pt):
    """After vBMC, interior tiles hold full diagonals: tile count per
    block-row stays near the stencil size."""
    p = problem_3d_7pt
    vb = build_vbmc(p.grid, p.stencil, (4, 4, 4), 8)
    dbsr = DBSRMatrix.from_csr(vb.apply_matrix(p.matrix), 8)
    tiles_per_blockrow = dbsr.n_tiles / dbsr.brow
    assert tiles_per_blockrow < 2 * p.stencil.n_points
