"""Unit tests for classic BMC ordering."""

import numpy as np
import pytest

from repro.grids.assembly import assemble_csr
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import box9_2d, box27_3d, star5_2d
from repro.ordering.bmc import build_bmc, color_blocks
from repro.ordering.blocks import partition_grid
from repro.ordering.coloring import validate_coloring


def test_block_colors_conflict_free_box():
    g = StructuredGrid((8, 8))
    part = partition_grid(g, (2, 2))
    colors = color_blocks(part, box9_2d())
    # Adjacent blocks (Chebyshev distance 1) differ.
    coords = part.block_grid.coords_array()
    for a in range(part.n_blocks):
        for b in range(a + 1, part.n_blocks):
            if np.abs(coords[a] - coords[b]).max() == 1:
                assert colors[a] != colors[b]


def test_block_colors_star_two_colors():
    g = StructuredGrid((8, 8))
    part = partition_grid(g, (2, 2))
    colors = color_blocks(part, star5_2d())
    assert colors.max() + 1 == 2


def test_bmc_perm_is_bijection(problem_2d):
    bmc = build_bmc(problem_2d.grid, problem_2d.stencil, (4, 4))
    assert sorted(bmc.perm.old_to_new.tolist()) == \
        list(range(problem_2d.n))


def test_bmc_color_major_layout(problem_2d):
    bmc = build_bmc(problem_2d.grid, problem_2d.stencil, (4, 4))
    ppb = bmc.points_per_block
    # New ids of blocks in processing order are consecutive ranges.
    for rank, blk in enumerate(bmc.block_order):
        ids = bmc.partition.block_point_ids(blk)
        new = np.sort(bmc.perm.old_to_new[ids])
        assert np.array_equal(new,
                              np.arange(rank * ppb, (rank + 1) * ppb))


def test_same_color_blocks_independent(problem_3d_27pt):
    """The BMC guarantee: the permuted matrix has no couplings between
    same-color blocks."""
    p = problem_3d_27pt
    bmc = build_bmc(p.grid, p.stencil, (4, 4, 4))
    A = p.matrix
    colors = bmc.block_colors
    ppb = bmc.points_per_block
    # Map each point to its block color via block ids.
    point_color = np.empty(p.n, dtype=int)
    for blk in range(bmc.partition.n_blocks):
        point_color[bmc.partition.block_point_ids(blk)] = colors[blk]
    point_block = np.empty(p.n, dtype=int)
    for blk in range(bmc.partition.n_blocks):
        point_block[bmc.partition.block_point_ids(blk)] = blk
    rows = np.repeat(np.arange(p.n), np.diff(A.indptr))
    cols = A.indices
    cross = point_block[rows] != point_block[cols]
    assert np.all(point_color[rows[cross]] != point_color[cols[cross]])


def test_color_block_ptr_partition(problem_2d):
    bmc = build_bmc(problem_2d.grid, problem_2d.stencil, (2, 2))
    total = sum(len(bmc.blocks_of_color(c)) for c in range(bmc.n_colors))
    assert total == bmc.partition.n_blocks


def test_unit_blocks_equal_point_mc(problem_2d):
    """BMC with 1-point blocks is point multi-coloring (the MC method)."""
    bmc = build_bmc(problem_2d.grid, problem_2d.stencil, (1, 1))
    assert bmc.points_per_block == 1
    assert bmc.n_colors == 4  # box stencil in 2-D
    A = problem_2d.matrix
    point_color = np.empty(problem_2d.n, dtype=int)
    for blk in range(bmc.partition.n_blocks):
        point_color[bmc.partition.block_point_ids(blk)] = \
            bmc.block_colors[blk]
    assert validate_coloring(A.indptr, A.indices, point_color)


def test_colors_compressed_for_degenerate_block_grid():
    """A block grid flat in one axis must not leave empty colors."""
    g = StructuredGrid((8, 8))
    bmc = build_bmc(g, box9_2d(), (8, 2))  # block grid (1, 4)
    counts = np.diff(bmc.color_block_ptr)
    assert np.all(counts > 0)
