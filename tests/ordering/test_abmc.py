"""Unit tests for the algebraic block multi-color ordering (ABMC)."""

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.formats.dbsr import DBSRMatrix
from repro.kernels.sptrsv_csr import split_triangular, sptrsv_csr
from repro.kernels.sptrsv_dbsr import (
    check_dbsr_triangular,
    sptrsv_dbsr_lower,
)
from repro.ordering.abmc import (
    aggregate_blocks,
    block_quotient_graph,
    build_abmc,
)


@pytest.fixture()
def irregular(random_sparse):
    """A symmetric irregular matrix (no grid structure)."""
    A = random_sparse(n=40, density=0.1, seed=17)
    dense = A.to_dense()
    dense = (dense + dense.T) / 2
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1.0)
    return CSRMatrix.from_dense(dense)


def test_aggregation_partitions_vertices(irregular):
    blocks = aggregate_blocks(irregular, 8)
    flat = np.sort(np.concatenate(blocks))
    assert np.array_equal(flat, np.arange(irregular.n_rows))
    assert all(len(b) <= 8 for b in blocks)


def test_quotient_graph_no_self_loops(irregular):
    blocks = aggregate_blocks(irregular, 8)
    indptr, indices, block_of = block_quotient_graph(irregular, blocks)
    rows = np.repeat(np.arange(len(blocks)), np.diff(indptr))
    assert np.all(rows != indices)


def test_same_color_blocks_independent(irregular):
    abmc = build_abmc(irregular, block_size=8, bsize=2)
    block_of = np.empty(irregular.n_rows, dtype=int)
    for b, members in enumerate(abmc.blocks):
        block_of[members] = b
    rows = np.repeat(np.arange(irregular.n_rows),
                     np.diff(irregular.indptr))
    cols = irregular.indices
    cross = block_of[rows] != block_of[cols]
    assert np.all(
        abmc.block_colors[block_of[rows[cross]]]
        != abmc.block_colors[block_of[cols[cross]]]
    )


def test_mapping_bijective_on_real_rows(irregular):
    abmc = build_abmc(irregular, block_size=8, bsize=4)
    assert len(np.unique(abmc.old_to_new)) == irregular.n_rows
    real = abmc.new_to_old[abmc.new_to_old >= 0]
    assert len(np.unique(real)) == irregular.n_rows


def test_extend_restrict_roundtrip(irregular, rng):
    abmc = build_abmc(irregular, block_size=8, bsize=4)
    v = rng.standard_normal(irregular.n_rows)
    assert np.allclose(abmc.restrict(abmc.extend(v)), v)


def test_apply_matrix_equivalence(irregular, rng):
    abmc = build_abmc(irregular, block_size=8, bsize=4)
    Ap = abmc.apply_matrix(irregular)
    x = rng.standard_normal(irregular.n_rows)
    assert np.allclose(abmc.restrict(Ap.matvec(abmc.extend(x))),
                       irregular.matvec(x))


def test_dbsr_sptrsv_correct_on_irregular_matrix(irregular, rng):
    """The paper's future-work scenario: DBSR SpTRSV on a general
    (non-grid) matrix via ABMC. More tiles, same math."""
    abmc = build_abmc(irregular, block_size=8, bsize=4)
    Ap = abmc.apply_matrix(irregular)
    L, D, U = split_triangular(Ap)
    Ld = DBSRMatrix.from_csr(L, 4)
    assert check_dbsr_triangular(Ld, lower=True)
    b = rng.standard_normal(Ap.n_rows)
    assert np.allclose(sptrsv_dbsr_lower(Ld, b, diag=D),
                       sptrsv_csr(L, D, b))


def test_abmc_ilu_pipeline_on_irregular_matrix(irregular):
    from repro.ilu.ilu0_dbsr import ilu0_apply_dbsr, ilu0_factorize_dbsr
    from repro.solvers.stationary import preconditioned_richardson

    abmc = build_abmc(irregular, block_size=8, bsize=4)
    dbsr = DBSRMatrix.from_csr(abmc.apply_matrix(irregular), 4)
    f = ilu0_factorize_dbsr(dbsr)
    b = irregular.matvec(np.ones(irregular.n_rows))
    x, hist = preconditioned_richardson(
        irregular, b,
        lambda r: abmc.restrict(ilu0_apply_dbsr(f, abmc.extend(r))),
        tol=1e-10, maxiter=300)
    assert hist.converged
    assert np.allclose(x, 1.0, atol=1e-6)


def test_structured_matrix_through_abmc(problem_2d, rng):
    """ABMC also works on grid matrices (it just ignores geometry)."""
    abmc = build_abmc(problem_2d.matrix, block_size=8, bsize=2)
    Ap = abmc.apply_matrix(problem_2d.matrix)
    x = rng.standard_normal(problem_2d.n)
    assert np.allclose(abmc.restrict(Ap.matvec(abmc.extend(x))),
                       problem_2d.matrix.matvec(x))


def test_schedule_covers_all_block_rows(irregular):
    abmc = build_abmc(irregular, block_size=8, bsize=4)
    sched = abmc.schedule
    rows = []
    for g in range(sched.n_groups):
        rows.extend(sched.block_rows_of_group(g))
    assert rows == list(range(abmc.n_padded // sched.bsize))
