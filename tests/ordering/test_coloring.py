"""Unit tests for point multi-coloring and greedy coloring."""

import numpy as np
import pytest

from repro.grids.assembly import assemble_csr
from repro.grids.grid import StructuredGrid
from repro.grids.stencils import box9_2d, box27_3d, star5_2d, star7_3d
from repro.ordering.coloring import (
    color_counts,
    greedy_coloring,
    point_multicolor,
    validate_coloring,
)


@pytest.mark.parametrize("dims,stencil,n_colors", [
    ((6, 6), star5_2d(), 2),
    ((6, 6), box9_2d(), 4),
    ((4, 4, 4), star7_3d(), 2),
    ((4, 4, 4), box27_3d(), 8),
])
def test_structured_coloring_valid_and_minimal(dims, stencil, n_colors):
    g = StructuredGrid(dims)
    colors = point_multicolor(g, stencil)
    assert colors.max() + 1 == n_colors
    A = assemble_csr(g, stencil)
    assert validate_coloring(A.indptr, A.indices, colors)


def test_coloring_balanced():
    g = StructuredGrid((8, 8))
    colors = point_multicolor(g, box9_2d())
    counts = color_counts(colors)
    assert np.all(counts == 16)


def test_greedy_coloring_valid(problem_3d_27pt):
    A = problem_3d_27pt.matrix
    colors = greedy_coloring(A.indptr, A.indices)
    assert validate_coloring(A.indptr, A.indices, colors)
    # Greedy on a 27-pt grid needs at most 27 colors, usually 8.
    assert colors.max() + 1 <= 27


def test_greedy_matches_chromatic_bound_on_path():
    # Path graph: 2-colorable.
    indptr = np.array([0, 1, 3, 5, 6])
    indices = np.array([1, 0, 2, 1, 3, 2])
    colors = greedy_coloring(indptr, indices)
    assert validate_coloring(indptr, indices, colors)
    assert colors.max() + 1 == 2


def test_validate_rejects_bad_coloring():
    indptr = np.array([0, 1, 2])
    indices = np.array([1, 0])
    assert not validate_coloring(indptr, indices, np.array([0, 0]))
    assert validate_coloring(indptr, indices, np.array([0, 1]))


def test_reach2_rejected():
    from repro.grids.stencils import Stencil

    wide = Stencil("wide", ((0, 0), (2, 0), (-2, 0)), (2.0, -1.0, -1.0))
    with pytest.raises(ValueError):
        point_multicolor(StructuredGrid((6, 6)), wide)
