"""Unit tests for grid block partitioning."""

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.ordering.blocks import (
    auto_block_dims,
    fixed_block_dims,
    partition_grid,
)


def test_partition_counts():
    g = StructuredGrid((8, 8))
    part = partition_grid(g, (4, 4))
    assert part.n_blocks == 4
    assert part.points_per_block == 16
    assert part.block_grid.dims == (2, 2)


def test_block_point_ids_cover_grid():
    g = StructuredGrid((6, 4))
    part = partition_grid(g, (3, 2))
    table = part.all_block_point_ids()
    flat = np.sort(table.ravel())
    assert np.array_equal(flat, np.arange(g.n_points))


def test_block_point_ids_lexicographic_within_block():
    g = StructuredGrid((4, 4))
    part = partition_grid(g, (2, 2))
    ids = part.block_point_ids(0)
    # Block at origin: (0,0),(1,0),(0,1),(1,1) -> 0,1,4,5
    assert list(ids) == [0, 1, 4, 5]


def test_block_point_ids_offset_block():
    g = StructuredGrid((4, 4))
    part = partition_grid(g, (2, 2))
    ids = part.block_point_ids(3)  # block coord (1,1)
    assert list(ids) == [10, 11, 14, 15]


def test_indivisible_rejected():
    with pytest.raises(ValueError):
        partition_grid(StructuredGrid((6, 6)), (4, 4))


def test_fixed_block_dims_64_is_cubic():
    g = StructuredGrid((16, 16, 16))
    dims = fixed_block_dims(g, 64)
    assert int(np.prod(dims)) == 64
    assert dims == (4, 4, 4)


def test_fixed_block_dims_2d():
    g = StructuredGrid((16, 16))
    dims = fixed_block_dims(g, 64)
    assert int(np.prod(dims)) == 64
    assert dims == (8, 8)


def test_auto_blocks_feed_workers():
    g = StructuredGrid((16, 16, 16))
    for workers in (1, 4, 16):
        dims = auto_block_dims(g, workers, bsize=4, n_colors=2)
        n_blocks = g.n_points // int(np.prod(dims))
        assert n_blocks >= workers * 4 * 2


def test_auto_blocks_grow_when_few_workers():
    g = StructuredGrid((16, 16, 16))
    few = auto_block_dims(g, 1, bsize=1)
    many = auto_block_dims(g, 64, bsize=4)
    assert np.prod(few) >= np.prod(many)


def test_auto_fallback_unit_blocks():
    g = StructuredGrid((2, 2))
    dims = auto_block_dims(g, 1000, bsize=8)
    assert dims == (1, 1)
