"""Tier parity: every backend is bit-identical to the counted twin.

The twin-testing contract (docs/backends.md): ``numpy-counted`` is the
reference; ``numpy-fast`` and the numba loop bodies must match it under
``np.array_equal`` on every op, format, and block size — and the
counted twin's tallies must equal the closed forms exactly. The numba
leg runs the *same* loop nests interpreted (``jit=False``) where numba
is missing, and JIT-compiled where it is present.
"""

import numpy as np
import pytest

from repro.backends import get_backend
from repro.backends.numba_backend import NumbaBackend, numba_available
from repro.grids import StructuredGrid
from repro.serve.plan import PLAN_OPS, PlanConfig, compile_plan

GRID = (6, 6, 6)
STENCIL = "27pt"

PLAN_CASES = [
    ("dbsr", 4),
    ("dbsr", 8),
    ("sell", 4),
]


def _plan(strategy, bsize, backend="numpy-fast"):
    return compile_plan(
        StructuredGrid(GRID), STENCIL,
        PlanConfig(bsize=bsize, strategy=strategy, backend=backend))


@pytest.fixture(scope="module")
def rhs(rng):
    return rng.standard_normal((StructuredGrid(GRID).n_points, 3))


@pytest.mark.parametrize("strategy,bsize", PLAN_CASES)
@pytest.mark.parametrize("op", PLAN_OPS)
def test_fast_plan_bitwise_equals_counted_plan(strategy, bsize, op, rhs):
    fast = _plan(strategy, bsize, "numpy-fast")
    counted = _plan(strategy, bsize, "numpy-counted")
    assert fast._backend().name == "numpy-fast"
    assert counted._backend().name == "numpy-counted"
    assert np.array_equal(fast.execute(op, rhs),
                          counted.execute(op, rhs))


@pytest.mark.parametrize("strategy,bsize", PLAN_CASES)
@pytest.mark.parametrize("op", PLAN_OPS)
def test_numba_bodies_bitwise_equal_counted(strategy, bsize, op, rhs):
    """The numba loop nests (interpreted, so this runs everywhere)
    reproduce the counted twin bit-for-bit."""
    plan = _plan(strategy, bsize)
    counted = get_backend("numpy-counted")
    nb = NumbaBackend(jit=False)
    Bp = plan.extend(rhs)
    assert np.array_equal(nb.run(plan, op, Bp),
                          counted.run(plan, op, Bp))


@pytest.mark.parametrize("strategy,bsize", PLAN_CASES)
@pytest.mark.parametrize("op", PLAN_OPS)
def test_jit_bitwise_equals_counted(strategy, bsize, op, rhs):
    """jit ≡ counted — the compiled-tier twin contract (numba only)."""
    pytest.importorskip("numba")
    plan = _plan(strategy, bsize, backend="numba")
    assert plan._backend().name == "numba"
    counted = _plan(strategy, bsize, "numpy-counted")
    assert np.array_equal(plan.execute(op, rhs),
                          counted.execute(op, rhs))


def test_jit_false_and_true_agree_when_numba_present(rhs):
    if not numba_available():
        pytest.skip("numba not installed")
    plan = _plan("dbsr", 4)
    Bp = plan.extend(rhs)
    for op in PLAN_OPS:
        assert np.array_equal(NumbaBackend(jit=True).run(plan, op, Bp),
                              NumbaBackend(jit=False).run(plan, op, Bp))


@pytest.mark.parametrize("op", PLAN_OPS)
def test_counted_tallies_equal_plan_closed_forms(op, rhs):
    """The counted backend's engine tally equals the closed forms the
    plan attributes to its execute spans — per op, k > 1."""
    plan = _plan("dbsr", 4, "numpy-counted")
    backend = plan._backend()
    plan.execute(op, rhs)
    engine = backend.last_engine
    expected = plan.op_counts(op, rhs.shape[1])
    for fld in ("vload", "vstore", "vgather", "vscatter", "vfma",
                "vdiv", "vadd", "bytes_values", "bytes_index",
                "bytes_vector", "bytes_gathered"):
        assert getattr(engine.counter, fld) == getattr(expected, fld), \
            (op, fld)


def test_counted_sell_tally_scales_with_k(rng):
    plan = _plan("sell", 4, "numpy-counted")
    backend = plan._backend()
    B = rng.standard_normal((plan.n, 4))
    plan.execute("lower", B)
    expected = plan.op_counts("lower", 4)
    assert backend.last_engine.counter.vfma == expected.vfma
    assert backend.last_engine.counter.vgather == expected.vgather
