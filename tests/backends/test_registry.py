"""Backend registry: naming, singletons, resolution, config plumbing."""

import warnings

import pytest

from repro.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.backends.numba_backend import numba_available
from repro.serve.plan import PlanConfig


def test_registry_names():
    assert BACKEND_NAMES == ("numpy-counted", "numpy-fast", "numba")
    assert DEFAULT_BACKEND == "numpy-fast"
    for name in BACKEND_NAMES:
        assert get_backend(name).name == name


def test_backends_are_singletons():
    for name in BACKEND_NAMES:
        assert get_backend(name) is get_backend(name)


def test_unknown_backend_raises():
    with pytest.raises(KeyError, match="unknown backend"):
        get_backend("fortran")
    with pytest.raises(KeyError, match="unknown backend"):
        resolve_backend("fortran")


def test_numpy_tiers_always_available():
    avail = available_backends()
    assert "numpy-counted" in avail
    assert "numpy-fast" in avail


def test_resolve_default():
    assert resolve_backend(None).name == DEFAULT_BACKEND
    assert resolve_backend("numpy-counted").name == "numpy-counted"


def test_resolve_missing_numba_falls_back():
    if numba_available():
        assert resolve_backend("numba").name == "numba"
        return
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        be = resolve_backend("numba")
    assert be.name == DEFAULT_BACKEND
    # The degradation warning is one-time per process, so it may have
    # fired in an earlier test already; when it fires here it must name
    # both tiers.
    texts = [str(w.message) for w in caught
             if issubclass(w.category, RuntimeWarning)]
    for text in texts:
        assert "numba" in text and DEFAULT_BACKEND in text


def test_config_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown backend"):
        PlanConfig(backend="fortran")


def test_backend_in_fingerprint():
    from repro.grids import StructuredGrid
    from repro.serve.plan import structural_fingerprint

    grid = StructuredGrid((6, 6, 6))
    fps = {structural_fingerprint(grid, "27pt", PlanConfig(backend=b))
           for b in BACKEND_NAMES}
    assert len(fps) == len(BACKEND_NAMES)
