"""Tests for the functional distributed substrate."""

import numpy as np
import pytest

from repro.cluster.functional import (
    build_distributed,
    distributed_dot,
    distributed_residual_norm,
    distributed_spmv,
    halo_exchange,
)
from repro.cluster.halo import halo_bytes_per_rank
from repro.grids.problems import poisson_problem


@pytest.fixture(scope="module")
def dist8():
    p = poisson_problem((8, 8, 8), "27pt")
    return p, build_distributed(p, 8, proc_grid=(2, 2, 2))


def test_partition_covers_domain(dist8):
    p, dist = dist8
    total = sum(r.n_owned for r in dist.ranks)
    assert total == p.n
    all_owned = np.sort(np.concatenate(
        [r.owned_global for r in dist.ranks]))
    assert np.array_equal(all_owned, np.arange(p.n))


def test_scatter_gather_roundtrip(dist8, rng):
    p, dist = dist8
    v = rng.standard_normal(p.n)
    assert np.allclose(dist.gather(dist.scatter(v)), v)


def test_distributed_spmv_matches_global(dist8, rng):
    p, dist = dist8
    x = rng.standard_normal(p.n)
    y_locals = distributed_spmv(dist, dist.scatter(x))
    assert np.allclose(dist.gather(y_locals), p.matrix.matvec(x))


def test_distributed_dot_matches_global(dist8, rng):
    p, dist = dist8
    x = rng.standard_normal(p.n)
    y = rng.standard_normal(p.n)
    got = distributed_dot(dist.scatter(x), dist.scatter(y))
    assert np.isclose(got, x @ y)


def test_distributed_residual(dist8):
    p, dist = dist8
    x = dist.scatter(p.exact)
    b = dist.scatter(p.rhs)
    assert distributed_residual_norm(dist, x, b) < 1e-10


def test_ghost_counts_match_halo_formula(dist8):
    """Interior-rank ghost volume equals the analytic 27-point halo
    (faces + edges + corners of the 4^3 brick)."""
    p, dist = dist8
    expected = halo_bytes_per_rank(4, dtype_bytes=8)
    for r in dist.ranks:
        # In a 2x2x2 grid every rank touches 7 neighbors (a corner
        # rank): ghosts cover 3 faces + 3 edges + 1 corner.
        faces = 3 * 16
        edges = 3 * 4
        corners = 1
        assert r.n_ghost == faces + edges + corners
    # The analytic formula is the *interior* (26-neighbor) volume, an
    # upper bound on corner ranks.
    assert all(r.halo_bytes() <= expected for r in dist.ranks)


def test_anisotropic_decomposition(rng):
    p = poisson_problem((8, 4, 4), "7pt")
    dist = build_distributed(p, 4, proc_grid=(4, 1, 1))
    x = rng.standard_normal(p.n)
    y = distributed_spmv(dist, dist.scatter(x))
    assert np.allclose(dist.gather(y), p.matrix.matvec(x))


def test_2d_decomposition(rng):
    p = poisson_problem((8, 8), "9pt")
    dist = build_distributed(p, 4, proc_grid=(2, 2))
    x = rng.standard_normal(p.n)
    y = distributed_spmv(dist, dist.scatter(x))
    assert np.allclose(dist.gather(y), p.matrix.matvec(x))


def test_indivisible_grid_supported(rng):
    """Uneven bricks: 6 points over 4 ranks gives sizes (2, 2, 1, 1),
    and the distributed SpMV stays bit-identical to the global one."""
    p = poisson_problem((6, 6), "5pt")
    dist = build_distributed(p, 4, proc_grid=(4, 1))
    assert [r.brick_dims for r in dist.ranks] == \
        [(2, 6), (2, 6), (1, 6), (1, 6)]
    assert sum(r.n_owned for r in dist.ranks) == p.n
    x = rng.standard_normal(p.n)
    y = dist.gather(distributed_spmv(dist, dist.scatter(x)))
    assert np.array_equal(y, p.matrix.matvec(x))


def test_oversubscribed_dimension_rejected():
    p = poisson_problem((6, 6), "5pt")
    with pytest.raises(ValueError):
        build_distributed(p, 8, proc_grid=(8, 1))


def test_distributed_cg_solves(dist8):
    """A hand-rolled distributed CG using only the simulated-MPI
    primitives converges to the global solution."""
    p, dist = dist8
    b = dist.scatter(p.rhs)
    x = [np.zeros(r.n_owned) for r in dist.ranks]
    r_loc = [bb.copy() for bb in b]
    p_loc = [rr.copy() for rr in r_loc]
    rs = distributed_dot(r_loc, r_loc)
    for _ in range(200):
        if np.sqrt(rs) < 1e-10:
            break
        Ap = distributed_spmv(dist, p_loc)
        alpha = rs / distributed_dot(p_loc, Ap)
        for xl, pl, rl, apl in zip(x, p_loc, r_loc, Ap):
            xl += alpha * pl
            rl -= alpha * apl
        rs_new = distributed_dot(r_loc, r_loc)
        beta = rs_new / rs
        for pl, rl in zip(p_loc, r_loc):
            pl[:] = rl + beta * pl
        rs = rs_new
    assert np.allclose(dist.gather(x), p.exact, atol=1e-7)
