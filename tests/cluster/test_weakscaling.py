"""Integration tests for the Fig. 7 weak-scaling model."""

import pytest

from repro.cluster.weakscaling import NetworkModel, weak_scaling_sweep
from repro.hpcg.benchmark import build_hpcg_model


@pytest.fixture(scope="module")
def dbsr_model():
    return build_hpcg_model(nx=8, variant="dbsr", n_levels=2, bsize=4,
                            n_workers=4)


def test_sweep_structure(dbsr_model):
    pts = weak_scaling_sweep(dbsr_model, node_counts=(1, 4, 16))
    assert [p.nodes for p in pts] == [1, 4, 16]
    assert pts[0].ranks == 8


def test_efficiency_above_90_percent(dbsr_model):
    """The paper's headline: >90% parallel efficiency to 256 nodes."""
    pts = weak_scaling_sweep(dbsr_model,
                             node_counts=(1, 4, 16, 64, 256))
    for p in pts:
        assert p.efficiency > 0.90
    assert pts[0].efficiency == pytest.approx(1.0)


def test_efficiency_monotone_decreasing(dbsr_model):
    pts = weak_scaling_sweep(dbsr_model, node_counts=(1, 4, 64, 256))
    effs = [p.efficiency for p in pts]
    assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))


def test_gflops_grow_with_nodes(dbsr_model):
    pts = weak_scaling_sweep(dbsr_model, node_counts=(1, 16, 256))
    gf = [p.gflops for p in pts]
    assert gf[0] < gf[1] < gf[2]


def test_dbsr_beats_cpo_at_256_nodes(dbsr_model):
    """§V-C: DBSR gives ~13% over CPO at full cluster scale."""
    cpo = build_hpcg_model(nx=8, variant="cpo", n_levels=2,
                           n_workers=4)
    p_dbsr = weak_scaling_sweep(dbsr_model, node_counts=(256,))[0]
    p_cpo = weak_scaling_sweep(cpo, node_counts=(256,))[0]
    assert 1.05 < p_dbsr.gflops / p_cpo.gflops < 1.5


def test_slow_network_hurts_efficiency(dbsr_model):
    slow = NetworkModel(link_bw_gbs=0.05, link_latency_us=200.0,
                        allreduce_latency_us=300.0)
    pts = weak_scaling_sweep(dbsr_model, node_counts=(1, 256),
                             network=slow)
    fast = weak_scaling_sweep(dbsr_model, node_counts=(1, 256))
    assert pts[1].efficiency < fast[1].efficiency
