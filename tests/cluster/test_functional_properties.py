"""Property tests: the simulated-MPI substrate on non-divisible grids.

Hypothesis draws grid extents and process grids that (almost) never
divide evenly, and checks the invariants the sharding layer leans on:

* the owned sets partition the global ids and uneven brick extents
  follow the HPCG rule (``rem`` leading bricks get one extra point);
* gathered :func:`distributed_spmv` is **bit-identical** to the global
  matvec (the interleaved-layout guarantee);
* allreduce-style dot / residual norm agree with their global
  counterparts to reduction-reorder tolerance only — cross-rank sums
  accumulate in rank order, not index order, so bitwise equality is
  explicitly *not* promised for reductions;
* each rank's materialized ghost-owner set equals the Chebyshev-
  adjacent rank set for box stencils (and is a subset for stars), and
  interior ranks match :func:`halo_neighbor_count`'s closed form.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.decomp import halo_neighbor_count
from repro.cluster.functional import (
    brick_splits,
    build_distributed,
    distributed_dot,
    distributed_residual_norm,
    distributed_spmv,
)
from repro.grids.problems import poisson_problem

pytestmark = pytest.mark.fast


@st.composite
def decompositions(draw, ndim_choices=(2, 3)):
    """(dims, proc_grid, stencil) with 1 <= parts <= extent per dim."""
    ndim = draw(st.sampled_from(ndim_choices))
    hi = 9 if ndim == 2 else 6
    dims = tuple(draw(st.integers(2, hi)) for _ in range(ndim))
    pg = tuple(draw(st.integers(1, min(3, g))) for g in dims)
    stencil = draw(st.sampled_from(
        ("5pt", "9pt") if ndim == 2 else ("7pt", "27pt")))
    return dims, pg, stencil


def _dist(dims, pg, stencil):
    problem = poisson_problem(dims, stencil)
    return problem, build_distributed(
        problem, int(np.prod(pg)), proc_grid=pg)


@given(decompositions())
@settings(max_examples=40, deadline=None)
def test_owned_sets_partition_and_bricks_follow_hpcg_rule(case):
    dims, pg, stencil = case
    problem, dist = _dist(dims, pg, stencil)
    owned = np.concatenate([r.owned_global for r in dist.ranks])
    assert np.array_equal(np.sort(owned), np.arange(problem.n))
    for g, p in zip(dims, pg):
        sizes, starts = brick_splits(g, p)
        base, rem = divmod(g, p)
        assert sizes == [base + 1] * rem + [base] * (p - rem)
        assert starts[0] == 0 and starts[-1] + sizes[-1] == g
    # Scatter/gather roundtrip is exact.
    x = np.arange(problem.n, dtype=np.float64)
    assert np.array_equal(dist.gather(dist.scatter(x)), x)


@given(decompositions(), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_distributed_spmv_bitwise_global(case, seed):
    dims, pg, stencil = case
    problem, dist = _dist(dims, pg, stencil)
    x = np.random.default_rng(seed).standard_normal(problem.n)
    y = dist.gather(distributed_spmv(dist, dist.scatter(x)))
    assert np.array_equal(y, problem.matrix.matvec(x))


@given(decompositions(), st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_reductions_match_global_to_reorder_tolerance(case, seed):
    dims, pg, stencil = case
    problem, dist = _dist(dims, pg, stencil)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(problem.n)
    y = rng.standard_normal(problem.n)
    xl, yl = dist.scatter(x), dist.scatter(y)
    # Reduction reorder only: rank-partial sums in rank order.
    assert distributed_dot(xl, yl) == pytest.approx(
        float(x @ y), rel=1e-12, abs=1e-9)
    b = dist.scatter(problem.rhs)
    want = float(np.linalg.norm(
        problem.rhs - problem.matrix.matvec(x)))
    assert distributed_residual_norm(dist, xl, b) == pytest.approx(
        want, rel=1e-12, abs=1e-9)


def _chebyshev_neighbors(coord, pg):
    """All process-grid coords at Chebyshev distance 1 from ``coord``."""
    ids = []
    for delta in itertools.product((-1, 0, 1), repeat=len(pg)):
        if all(d == 0 for d in delta):
            continue
        nb = tuple(c + d for c, d in zip(coord, delta))
        if all(0 <= c < p for c, p in zip(nb, pg)):
            ids.append(nb)
    return ids


@given(decompositions())
@settings(max_examples=40, deadline=None)
def test_ghost_owner_set_matches_adjacency(case):
    dims, pg, stencil = case
    _, dist = _dist(dims, pg, stencil)
    box = stencil in ("9pt", "27pt")
    # Recover each rank's process-grid coordinate from its brick
    # origin so the check is independent of rank-numbering order.
    coord_of = {}
    origins = [sorted({r.brick_origin[d] for r in dist.ranks})
               for d in range(len(pg))]
    for r in dist.ranks:
        coord_of[r.rank] = tuple(
            origins[d].index(r.brick_origin[d])
            for d in range(len(pg)))
    rank_at = {c: rk for rk, c in coord_of.items()}
    for r in dist.ranks:
        expected = {rank_at[c]
                    for c in _chebyshev_neighbors(coord_of[r.rank],
                                                  pg)}
        got = set(int(o) for o in r.ghost_owner)
        assert set(r.neighbor_ranks) == got
        if box:
            assert got == expected
        else:
            assert got <= expected
            # Stars still reach every face neighbor.
            face = {rank_at[c]
                    for c in _chebyshev_neighbors(coord_of[r.rank], pg)
                    if sum(a != b for a, b in
                           zip(c, coord_of[r.rank])) == 1}
            assert face <= got


@given(decompositions(ndim_choices=(3,)))
@settings(max_examples=25, deadline=None)
def test_interior_ranks_match_halo_neighbor_closed_form(case):
    dims, pg, stencil = case
    if stencil != "27pt":
        stencil = "27pt"  # the closed form is the 27-stencil count
    _, dist = _dist(dims, pg, stencil)
    origins = [sorted({r.brick_origin[d] for r in dist.ranks})
               for d in range(len(pg))]
    expected = halo_neighbor_count(pg, interior=True)
    for r in dist.ranks:
        coord = tuple(origins[d].index(r.brick_origin[d])
                      for d in range(len(pg)))
        # The closed form's per-dim factor is p when p < 3 (every rank
        # spans to both walls) and 3 only for truly interior coords.
        interior = all(p < 3 or 0 < c < p - 1
                       for c, p in zip(coord, pg))
        if interior:
            assert len(r.neighbor_ranks) == expected
        else:
            assert len(r.neighbor_ranks) <= expected
