"""Unit tests for rank decomposition."""

import numpy as np
import pytest

from repro.cluster.decomp import decompose_ranks, halo_neighbor_count


@pytest.mark.parametrize("ranks,expect", [
    (1, (1, 1, 1)),
    (8, (2, 2, 2)),
    (64, (4, 4, 4)),
    (2048, (8, 16, 16)),
])
def test_cubic_decompositions(ranks, expect):
    got = decompose_ranks(ranks)
    assert int(np.prod(got)) == ranks
    assert sorted(got) == sorted(expect)


def test_prime_rank_count():
    got = decompose_ranks(7)
    assert int(np.prod(got)) == 7


def test_neighbor_count_interior():
    assert halo_neighbor_count((4, 4, 4)) == 26
    assert halo_neighbor_count((1, 4, 4)) == 8  # flat in x
    assert halo_neighbor_count((1, 1, 4)) == 2  # a line
    assert halo_neighbor_count((1, 1, 1)) == 0


def test_decompose_rejects_nonpositive():
    with pytest.raises(ValueError):
        decompose_ranks(0)
