"""Unit tests for halo exchange accounting."""

import pytest

from repro.cluster.halo import halo_bytes_per_rank, halo_seconds


def test_halo_bytes_cube():
    b = halo_bytes_per_rank(10)
    faces = 6 * 100
    edges = 12 * 10
    corners = 8
    assert b == (faces + edges + corners) * 8


def test_halo_bytes_anisotropic():
    b = halo_bytes_per_rank(4, 6, 8)
    faces = 2 * (4 * 6 + 6 * 8 + 4 * 8)
    edges = 4 * (4 + 6 + 8)
    assert b == (faces + edges + 8) * 8


def test_halo_bytes_dtype():
    assert halo_bytes_per_rank(10, dtype_bytes=4) == \
        halo_bytes_per_rank(10) // 2


def test_halo_seconds_components():
    t = halo_seconds(192, (4, 4, 4), link_bw_gbs=10.0,
                     link_latency_us=1.5)
    assert t > 26 * 1.5e-6  # at least the latencies
    t_fast = halo_seconds(192, (4, 4, 4), link_bw_gbs=100.0,
                          link_latency_us=1.5)
    assert t_fast < t


def test_surface_scaling():
    """Halo volume grows ~quadratically with the local edge."""
    t1 = halo_bytes_per_rank(64)
    t2 = halo_bytes_per_rank(128)
    assert 3.5 < t2 / t1 < 4.5
