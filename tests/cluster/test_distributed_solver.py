"""Tests for the distributed PCG solver."""

import numpy as np
import pytest

from repro.cluster.distributed_solver import (
    distributed_pcg,
    local_ilu_preconditioners,
)
from repro.cluster.functional import build_distributed
from repro.grids.problems import poisson_problem


@pytest.fixture(scope="module")
def dist():
    p = poisson_problem((8, 8, 8), "27pt")
    return p, build_distributed(p, 8, proc_grid=(2, 2, 2))


def test_distributed_pcg_solves(dist):
    p, d = dist
    x_locals, hist = distributed_pcg(d, d.scatter(p.rhs), tol=1e-10)
    assert hist.converged
    assert np.allclose(d.gather(x_locals), p.exact, atol=1e-7)


def test_preconditioning_reduces_iterations():
    """With one rank the preconditioner is true ILU(0) and must beat
    plain CG. (With many ranks block Jacobi drops couplings and can
    lose on small well-conditioned problems — see the
    more-ranks-weaker test.)"""
    p = poisson_problem((8, 8, 8), "7pt")
    d = build_distributed(p, 1, proc_grid=(1, 1, 1))
    _, h_plain = distributed_pcg(d, d.scatter(p.rhs), tol=1e-10,
                                 precondition=False)
    _, h_prec = distributed_pcg(d, d.scatter(p.rhs), tol=1e-10)
    assert h_prec.converged and h_plain.converged
    assert h_prec.iterations < h_plain.iterations


def test_unpreconditioned_matches_global_cg(dist):
    from repro.solvers.cg import cg

    p, d = dist
    x_locals, h_dist = distributed_pcg(d, d.scatter(p.rhs),
                                       tol=1e-10,
                                       precondition=False)
    x_global, h_glob = cg(p.matrix, p.rhs, tol=1e-10)
    assert h_dist.iterations == h_glob.iterations
    assert np.allclose(d.gather(x_locals), x_global, atol=1e-8)


def test_local_preconditioners_are_rank_local(dist):
    p, d = dist
    factors = local_ilu_preconditioners(d)
    assert len(factors) == d.n_ranks
    for f, r in zip(factors, d.ranks):
        assert f.factored.shape == (r.n_owned, r.n_owned)


def test_more_ranks_weaker_preconditioner():
    """Distributed block Jacobi drops more couplings with more ranks —
    the same trade the single-node BJ strategy exhibits."""
    p = poisson_problem((8, 8, 8), "27pt")
    iters = []
    for n_ranks, grid in ((1, (1, 1, 1)), (8, (2, 2, 2))):
        d = build_distributed(p, n_ranks, proc_grid=grid)
        _, hist = distributed_pcg(d, d.scatter(p.rhs), tol=1e-10)
        assert hist.converged
        iters.append(hist.iterations)
    assert iters[0] <= iters[1]
