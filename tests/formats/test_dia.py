"""Unit tests for the DIA format."""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.formats.dia import DIAMatrix


def tridiag(n=6):
    dense = (np.diag(np.full(n, 4.0))
             + np.diag(np.full(n - 1, -1.0), 1)
             + np.diag(np.full(n - 1, -2.0), -1))
    return dense


def test_from_coo_roundtrip():
    dense = tridiag()
    dia = DIAMatrix.from_coo(COOMatrix.from_dense(dense))
    assert dia.n_diags == 3
    assert np.array_equal(dia.to_dense(), dense)


def test_offsets_sorted():
    dense = tridiag()
    dia = DIAMatrix.from_coo(COOMatrix.from_dense(dense))
    assert list(dia.offsets) == [-1, 0, 1]


def test_matvec(rng):
    dense = tridiag(8)
    dia = DIAMatrix.from_coo(COOMatrix.from_dense(dense))
    x = rng.standard_normal(8)
    assert np.allclose(dia.matvec(x), dense @ x)


def test_rectangular_matvec(rng):
    dense = np.zeros((3, 5))
    dense[0, 0] = 1.0
    dense[1, 3] = 2.0
    dense[2, 4] = 3.0
    dia = DIAMatrix.from_coo(COOMatrix.from_dense(dense))
    x = rng.standard_normal(5)
    assert np.allclose(dia.matvec(x), dense @ x)


def test_nnz_excludes_padding():
    dense = tridiag(5)
    dia = DIAMatrix.from_coo(COOMatrix.from_dense(dense))
    # 5 diag + 4 upper + 4 lower
    assert dia.nnz == 13
    # but storage holds n per diagonal
    assert dia.memory_report().stored_values == 3 * 5


def test_out_of_range_slots_masked():
    offsets = [1]
    data = np.full((1, 3), 7.0)
    dia = DIAMatrix(offsets, data, (3, 3))
    dense = dia.to_dense()
    # Row 2 column 3 does not exist.
    assert dense[2].sum() == 0.0
    assert dia.data[0, 2] == 0.0


def test_duplicate_offsets_rejected():
    with pytest.raises(ValueError):
        DIAMatrix([0, 0], np.zeros((2, 3)), (3, 3))


def test_bad_data_shape_rejected():
    with pytest.raises(ValueError):
        DIAMatrix([0], np.zeros((2, 3)), (3, 3))


def test_memory_report():
    dense = tridiag(4)
    dia = DIAMatrix.from_coo(COOMatrix.from_dense(dense))
    rep = dia.memory_report()
    assert rep.value_bytes == 3 * 4 * 8
    assert rep.padding_values == 3 * 4 - dia.nnz
