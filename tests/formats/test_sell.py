"""Unit tests for SELL / SELL-C-sigma."""

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.formats.sell import SELLMatrix


def ragged_dense(rng, n=13, m=11):
    dense = rng.standard_normal((n, m))
    dense[np.abs(dense) < 0.9] = 0.0
    dense[0, :] = 0.0          # empty row
    dense[1, :] = 1.0          # full row
    return dense


def test_roundtrip_plain_sell(rng):
    dense = ragged_dense(rng)
    sell = SELLMatrix(CSRMatrix.from_dense(dense), chunk=4, sigma=1)
    assert np.array_equal(sell.to_dense(), dense)


def test_roundtrip_sigma_sorted(rng):
    dense = ragged_dense(rng)
    sell = SELLMatrix(CSRMatrix.from_dense(dense), chunk=4, sigma=8)
    assert np.array_equal(sell.to_dense(), dense)


def test_matvec_matches_csr(rng):
    dense = ragged_dense(rng)
    csr = CSRMatrix.from_dense(dense)
    x = rng.standard_normal(dense.shape[1])
    for sigma in (1, 4, 12):
        sell = SELLMatrix(csr, chunk=4, sigma=sigma if sigma != 12 else 4)
        assert np.allclose(sell.matvec(x), dense @ x), sigma


def test_sigma_reduces_padding(rng):
    # Alternating long/short rows: sorting shrinks chunk widths.
    n = 16
    dense = np.zeros((n, n))
    for i in range(n):
        dense[i, : (n if i % 2 == 0 else 1)] = 1.0
    csr = CSRMatrix.from_dense(dense)
    plain = SELLMatrix(csr, chunk=4, sigma=1)
    sorted_ = SELLMatrix(csr, chunk=4, sigma=16)
    assert sorted_.padding_fraction() < plain.padding_fraction()


def test_row_order_is_permutation(rng):
    dense = ragged_dense(rng)
    sell = SELLMatrix(CSRMatrix.from_dense(dense), chunk=4, sigma=8)
    assert sorted(sell.row_order.tolist()) == list(range(dense.shape[0]))


def test_sigma_must_be_multiple_of_chunk():
    csr = CSRMatrix.from_dense(np.eye(8))
    with pytest.raises(ValueError):
        SELLMatrix(csr, chunk=4, sigma=6)


def test_nnz_preserved(rng):
    dense = ragged_dense(rng)
    csr = CSRMatrix.from_dense(dense)
    sell = SELLMatrix(csr, chunk=4, sigma=4)
    assert sell.nnz == csr.nnz


def test_memory_report_padding(rng):
    dense = ragged_dense(rng)
    sell = SELLMatrix(CSRMatrix.from_dense(dense), chunk=4)
    rep = sell.memory_report()
    assert rep.stored_values >= rep.nnz
    assert rep.padding_bytes == (rep.stored_values - rep.nnz) * 8


def test_padding_columns_point_in_range(rng):
    dense = ragged_dense(rng)
    sell = SELLMatrix(CSRMatrix.from_dense(dense), chunk=4, sigma=1)
    assert sell.colidx.min() >= 0
    assert sell.colidx.max() < dense.shape[1]
