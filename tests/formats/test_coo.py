"""Unit tests for the COO format."""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix


def test_construction_and_dense_roundtrip():
    dense = np.array([[1.0, 0.0, 2.0],
                      [0.0, 0.0, 0.0],
                      [3.0, 0.0, 4.0]])
    coo = COOMatrix.from_dense(dense)
    assert coo.nnz == 4
    assert np.array_equal(coo.to_dense(), dense)


def test_duplicates_are_summed():
    coo = COOMatrix([0, 0, 1], [1, 1, 2], [2.0, 3.0, 1.0], (2, 3))
    assert coo.nnz == 2
    assert coo.to_dense()[0, 1] == 5.0


def test_canonical_order_sorted_by_row_then_col():
    coo = COOMatrix([1, 0, 1], [0, 2, 2], [1.0, 2.0, 3.0], (2, 3))
    rows = list(coo.rows)
    cols = list(coo.cols)
    assert rows == sorted(rows)
    assert (rows, cols) == ([0, 1, 1], [2, 0, 2])


def test_matvec_matches_dense(rng):
    dense = rng.standard_normal((6, 4))
    dense[dense < 0.3] = 0.0
    coo = COOMatrix.from_dense(dense)
    x = rng.standard_normal(4)
    assert np.allclose(coo.matvec(x), dense @ x)


def test_matmul_operator(rng):
    dense = np.eye(3) * 2
    coo = COOMatrix.from_dense(dense)
    x = rng.standard_normal(3)
    assert np.allclose(coo @ x, 2 * x)


def test_transpose():
    dense = np.array([[1.0, 2.0], [0.0, 3.0]])
    coo = COOMatrix.from_dense(dense)
    assert np.array_equal(coo.transpose().to_dense(), dense.T)


def test_out_of_range_indices_rejected():
    with pytest.raises(ValueError):
        COOMatrix([0], [5], [1.0], (2, 2))
    with pytest.raises(ValueError):
        COOMatrix([9], [0], [1.0], (2, 2))


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        COOMatrix([0, 1], [0], [1.0], (2, 2))


def test_empty_matrix():
    coo = COOMatrix([], [], [], (3, 3))
    assert coo.nnz == 0
    assert np.array_equal(coo.to_dense(), np.zeros((3, 3)))
    assert np.array_equal(coo.matvec(np.ones(3)), np.zeros(3))


def test_memory_report_bytes():
    coo = COOMatrix([0, 1], [1, 0], [1.0, 2.0], (2, 2))
    rep = coo.memory_report()
    assert rep.nnz == 2
    assert rep.arrays["values"] == 2 * 8
    assert rep.index_bytes == 2 * 4 * 2  # rows + cols, int32
    assert rep.padding_values == 0


def test_matvec_wrong_length_rejected():
    coo = COOMatrix([0], [0], [1.0], (2, 2))
    with pytest.raises(ValueError):
        coo.matvec(np.ones(3))
