"""Conversion helpers and cross-format consistency."""

import numpy as np
import pytest

from repro.formats.convert import FORMAT_NAMES, from_dense, to_format


def test_all_formats_agree_on_spmv(problem_3d_7pt, rng):
    csr = problem_3d_7pt.matrix
    x = rng.standard_normal(csr.n_cols)
    ref = csr.matvec(x)
    for name in FORMAT_NAMES:
        m = to_format(csr, name, bsize=4, chunk=4, sigma=8)
        assert np.allclose(m.matvec(x), ref), name


def test_all_formats_agree_on_dense(problem_2d_5pt):
    csr = problem_2d_5pt.matrix
    ref = csr.to_dense()
    for name in FORMAT_NAMES:
        m = to_format(csr, name, bsize=4, chunk=4, sigma=8)
        assert np.allclose(m.to_dense(), ref), name


def test_from_dense():
    dense = np.diag([1.0, 2.0, 3.0])
    csr = from_dense(dense)
    assert csr.nnz == 3
    assert np.array_equal(csr.to_dense(), dense)


def test_unknown_format_rejected(problem_2d_5pt):
    with pytest.raises(ValueError):
        to_format(problem_2d_5pt.matrix, "hyb")


def test_nnz_preserved_across_formats(problem_2d_5pt):
    csr = problem_2d_5pt.matrix
    for name in FORMAT_NAMES:
        m = to_format(csr, name, bsize=4, chunk=4, sigma=8)
        assert m.nnz == csr.nnz, name
