"""Unit tests for the BCSR format."""

import numpy as np
import pytest

from repro.formats.bcsr import BCSRMatrix
from repro.formats.csr import CSRMatrix


def block_dense():
    dense = np.zeros((8, 8))
    dense[0:2, 0:2] = [[1.0, 2.0], [3.0, 4.0]]
    dense[2:4, 6:8] = [[5.0, 0.0], [0.0, 6.0]]
    dense[6:8, 2:4] = [[0.0, 7.0], [8.0, 0.0]]
    return dense


def test_from_csr_roundtrip():
    dense = block_dense()
    bcsr = BCSRMatrix.from_csr(CSRMatrix.from_dense(dense), 2)
    assert bcsr.n_tiles == 3
    assert np.array_equal(bcsr.to_dense(), dense)


def test_matvec(rng):
    dense = block_dense()
    bcsr = BCSRMatrix.from_csr(CSRMatrix.from_dense(dense), 2)
    x = rng.standard_normal(8)
    assert np.allclose(bcsr.matvec(x), dense @ x)


def test_matvec_larger_blocks(rng):
    dense = rng.standard_normal((12, 12))
    dense[np.abs(dense) < 1.0] = 0.0
    bcsr = BCSRMatrix.from_csr(CSRMatrix.from_dense(dense), 4)
    x = rng.standard_normal(12)
    assert np.allclose(bcsr.matvec(x), dense @ x)


def test_padding_accounted():
    dense = block_dense()
    csr = CSRMatrix.from_dense(dense)
    bcsr = BCSRMatrix.from_csr(csr, 2)
    rep = bcsr.memory_report()
    assert rep.nnz == csr.nnz
    assert rep.stored_values == 3 * 4
    assert rep.padding_values == 3 * 4 - csr.nnz


def test_bcsr_pads_more_than_dbsr():
    """The §III-E claim: BCSR wastes more storage than DBSR on
    diagonal-within-tile patterns."""
    from repro.formats.dbsr import DBSRMatrix

    n = 16
    dense = np.diag(np.arange(1.0, n + 1))
    dense += np.diag(np.ones(n - 4), -4)
    csr = CSRMatrix.from_dense(dense)
    bcsr = BCSRMatrix.from_csr(csr, 4)
    dbsr = DBSRMatrix.from_csr(csr, 4)
    assert bcsr.memory_report().padding_values \
        > dbsr.memory_report().padding_values


def test_dims_must_divide():
    with pytest.raises(ValueError):
        BCSRMatrix.from_csr(CSRMatrix.from_dense(np.eye(6)), 4)


def test_empty_block_rows():
    dense = np.zeros((4, 4))
    dense[3, 3] = 1.0
    bcsr = BCSRMatrix.from_csr(CSRMatrix.from_dense(dense), 2)
    assert bcsr.n_tiles == 1
    assert np.allclose(bcsr.matvec(np.ones(4)), dense @ np.ones(4))
