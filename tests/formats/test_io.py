"""Unit tests for MatrixMarket I/O."""

import io

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.formats.io import read_matrix_market, write_matrix_market


def test_roundtrip(problem_2d_5pt, tmp_path):
    path = tmp_path / "a.mtx"
    write_matrix_market(problem_2d_5pt.matrix, str(path),
                        comment="8x8 5-point")
    coo = read_matrix_market(str(path))
    assert np.allclose(coo.to_dense(), problem_2d_5pt.matrix.to_dense())


def test_roundtrip_exact_values(rng, tmp_path):
    dense = rng.standard_normal((5, 7))
    dense[np.abs(dense) < 0.5] = 0.0
    coo = COOMatrix.from_dense(dense)
    buf = io.StringIO()
    write_matrix_market(coo, buf)
    buf.seek(0)
    back = read_matrix_market(buf)
    # repr() round-trips float64 exactly.
    assert np.array_equal(back.to_dense(), dense)


def test_read_symmetric():
    text = """%%MatrixMarket matrix coordinate real symmetric
% lower triangle only
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 1.5
"""
    coo = read_matrix_market(io.StringIO(text))
    dense = coo.to_dense()
    assert dense[0, 1] == dense[1, 0] == -1.0
    assert dense[0, 0] == 2.0 and dense[2, 2] == 1.5


def test_read_pattern():
    text = """%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
"""
    coo = read_matrix_market(io.StringIO(text))
    assert np.array_equal(coo.to_dense(),
                          [[0.0, 1.0], [1.0, 0.0]])


def test_comments_and_blank_lines_skipped():
    text = """%%MatrixMarket matrix coordinate real general
% a comment

2 2 1

1 1 3.0
"""
    coo = read_matrix_market(io.StringIO(text))
    assert coo.to_dense()[0, 0] == 3.0


def test_bad_header_rejected():
    with pytest.raises(ValueError):
        read_matrix_market(io.StringIO("not a header\n1 1 0\n"))
    with pytest.raises(ValueError):
        read_matrix_market(io.StringIO(
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n"))


def test_entry_count_mismatch_rejected():
    text = """%%MatrixMarket matrix coordinate real general
2 2 2
1 1 1.0
"""
    with pytest.raises(ValueError):
        read_matrix_market(io.StringIO(text))


def test_mtx_to_dbsr_pipeline(tmp_path, rng):
    """External matrix -> ABMC -> DBSR, end to end."""
    from repro.formats.csr import CSRMatrix
    from repro.formats.dbsr import DBSRMatrix
    from repro.ordering.abmc import build_abmc

    n = 24
    dense = rng.standard_normal((n, n))
    dense[np.abs(dense) < 1.2] = 0.0
    dense = (dense + dense.T) / 2
    np.fill_diagonal(dense, np.abs(dense).sum(axis=1) + 1)
    path = tmp_path / "ext.mtx"
    write_matrix_market(COOMatrix.from_dense(dense), str(path))

    csr = CSRMatrix.from_coo(read_matrix_market(str(path)))
    abmc = build_abmc(csr, block_size=6, bsize=2)
    dbsr = DBSRMatrix.from_csr(abmc.apply_matrix(csr), 2)
    x = rng.standard_normal(n)
    assert np.allclose(
        abmc.restrict(dbsr.matvec(abmc.extend(x))), dense @ x)
