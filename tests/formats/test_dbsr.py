"""Unit tests for the DBSR format (the paper's contribution)."""

import numpy as np
import pytest

from repro.formats.csr import CSRMatrix
from repro.formats.dbsr import DBSRMatrix


def test_roundtrip_on_reordered_matrix(reordered_2d):
    csr, dbsr = reordered_2d
    assert np.allclose(dbsr.to_dense(), csr.to_dense())


def test_roundtrip_3d(reordered_3d):
    csr, dbsr = reordered_3d
    assert np.allclose(dbsr.to_dense(), csr.to_dense())


def test_matvec_matches_csr(reordered_3d, rng):
    csr, dbsr = reordered_3d
    x = rng.standard_normal(csr.n_cols)
    assert np.allclose(dbsr.matvec(x), csr.matvec(x))


def test_works_on_arbitrary_sparsity(random_sparse, rng):
    """DBSR must stay lossless on matrices with no diagonal-tile
    structure (it just produces more tiles)."""
    csr = random_sparse(n=24, density=0.2, seed=7)
    dbsr = DBSRMatrix.from_csr(csr, 4)
    assert np.allclose(dbsr.to_dense(), csr.to_dense())
    x = rng.standard_normal(24)
    assert np.allclose(dbsr.matvec(x), csr.matvec(x))


def test_offsets_signed_within_range(reordered_3d):
    _, dbsr = reordered_3d
    assert dbsr.blk_offset.min() > -dbsr.bsize
    assert dbsr.blk_offset.max() < dbsr.bsize


def test_nonzero_lanes_stay_in_block_column(reordered_3d):
    """The Algorithm-4 invariant: each tile's non-zero lanes live in
    the block column named by blk_ind."""
    _, dbsr = reordered_3d
    anchors = dbsr.anchors
    for t in range(dbsr.n_tiles):
        lanes = np.flatnonzero(dbsr.values[t])
        if len(lanes):
            cols = anchors[t] + lanes
            assert np.all(cols // dbsr.bsize == dbsr.blk_ind[t])


def test_dia_ptr_points_at_main_diagonal(reordered_3d):
    csr, dbsr = reordered_3d
    dia = dbsr.dia_ptr
    assert np.all(dia >= 0)
    diag = csr.diagonal()
    for i in range(dbsr.brow):
        lanes = dbsr.values[dia[i]]
        assert np.allclose(
            lanes, diag[i * dbsr.bsize:(i + 1) * dbsr.bsize])


def test_tiles_sorted_by_anchor_within_block_row(reordered_3d):
    _, dbsr = reordered_3d
    anchors = dbsr.anchors
    for i in range(dbsr.brow):
        lo, hi = dbsr.blk_ptr[i], dbsr.blk_ptr[i + 1]
        assert np.all(np.diff(anchors[lo:hi]) >= 0)


def test_pad_unpad_inverse(reordered_2d, rng):
    _, dbsr = reordered_2d
    x = rng.standard_normal(dbsr.n_cols)
    assert np.array_equal(dbsr.unpad_vector(dbsr.pad_vector(x)), x)


def test_pad_vector_zero_borders(reordered_2d):
    _, dbsr = reordered_2d
    xp = dbsr.pad_vector(np.ones(dbsr.n_cols))
    b = dbsr.bsize
    assert np.all(xp[:b] == 0)
    assert np.all(xp[-b:] == 0)


def test_row_dim_must_divide():
    with pytest.raises(ValueError):
        DBSRMatrix.from_csr(CSRMatrix.from_dense(np.eye(6)), 4)


def test_bsize_one_degenerates_to_csr_semantics(random_sparse):
    csr = random_sparse(n=12, density=0.3, seed=3)
    dbsr = DBSRMatrix.from_csr(csr, 1)
    assert dbsr.n_tiles == csr.nnz
    assert np.all(dbsr.blk_offset == 0)
    assert np.allclose(dbsr.to_dense(), csr.to_dense())


def test_tile_count_approaches_ideal_on_large_grid():
    """Interior-dominant grids approach nnz / bsize tiles (§III-B)."""
    from repro.grids.problems import poisson_problem
    from repro.ordering.vbmc import build_vbmc

    p = poisson_problem((16, 16), "5pt")
    vb = build_vbmc(p.grid, p.stencil, (4, 4), 4)
    dbsr = DBSRMatrix.from_csr(vb.apply_matrix(p.matrix), 4)
    ideal = dbsr.nnz / dbsr.bsize
    assert dbsr.n_tiles < 2.2 * ideal


def test_memory_report_offset_packing(reordered_3d):
    _, dbsr = reordered_3d
    wide = dbsr.memory_report(offset_itemsize=4)
    packed = dbsr.memory_report(offset_itemsize=1)
    assert wide.total_bytes - packed.total_bytes == 3 * dbsr.n_tiles


def test_memory_beats_csr_at_moderate_bsize():
    """Fig. 11: index savings outweigh padding for sensible bsize."""
    from repro.grids.problems import poisson_problem
    from repro.ordering.vbmc import build_vbmc

    p = poisson_problem((16, 16, 16), "27pt")
    csr_bytes = p.matrix.memory_report().total_bytes
    vb = build_vbmc(p.grid, p.stencil, (4, 4, 4), 8)
    dbsr = DBSRMatrix.from_csr(vb.apply_matrix(p.matrix), 8)
    assert dbsr.memory_report(offset_itemsize=1).total_bytes < csr_bytes


def test_astype_float32(reordered_2d, rng):
    csr, dbsr = reordered_2d
    f32 = dbsr.astype(np.float32)
    assert f32.values.dtype == np.float32
    x = rng.standard_normal(csr.n_cols).astype(np.float32)
    assert np.allclose(f32.matvec(x), csr.matvec(x.astype(float)),
                       atol=1e-4)


def test_empty_matrix():
    csr = CSRMatrix([0, 0, 0, 0, 0], [], [], (4, 4))
    dbsr = DBSRMatrix.from_csr(csr, 2)
    assert dbsr.n_tiles == 0
    assert np.array_equal(dbsr.matvec(np.ones(4)), np.zeros(4))
