"""Tests for DBSR to_csr / transpose."""

import numpy as np

from repro.formats.dbsr import DBSRMatrix


def test_to_csr_roundtrip(reordered_3d):
    csr, dbsr = reordered_3d
    back = dbsr.to_csr()
    assert np.allclose(back.to_dense(), csr.to_dense())
    assert back.nnz == csr.nnz  # padding zeros dropped


def test_to_csr_from_csr_identity(random_sparse):
    A = random_sparse(n=20, density=0.2, seed=31)
    dbsr = DBSRMatrix.from_csr(A, 4)
    assert np.allclose(dbsr.to_csr().to_dense(), A.to_dense())


def test_transpose_matches_dense(reordered_2d):
    csr, dbsr = reordered_2d
    t = dbsr.transpose()
    assert np.allclose(t.to_dense(), csr.to_dense().T)


def test_transpose_involution(reordered_2d):
    _, dbsr = reordered_2d
    tt = dbsr.transpose().transpose()
    assert np.allclose(tt.to_dense(), dbsr.to_dense())


def test_transpose_swaps_triangles(reordered_3d, rng):
    from repro.kernels.sptrsv_csr import split_triangular

    csr, dbsr = reordered_3d
    L, D, U = split_triangular(csr)
    Lt = DBSRMatrix.from_csr(L, dbsr.bsize).transpose()
    # The operator is symmetric: L^T == U.
    assert np.allclose(Lt.to_dense(), U.to_dense())


def test_transpose_spmv_adjoint(reordered_2d, rng):
    csr, dbsr = reordered_2d
    t = dbsr.transpose()
    x = rng.standard_normal(csr.n_rows)
    y = rng.standard_normal(csr.n_rows)
    # <A x, y> == <x, A^T y>
    assert np.isclose(dbsr.matvec(x) @ y, x @ t.matvec(y))
