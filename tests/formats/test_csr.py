"""Unit tests for the CSR format."""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix


@pytest.fixture()
def small():
    dense = np.array([[4.0, -1.0, 0.0, 0.0],
                      [-1.0, 4.0, -1.0, 0.0],
                      [0.0, -1.0, 4.0, -1.0],
                      [0.0, 0.0, -1.0, 4.0]])
    return CSRMatrix.from_dense(dense), dense


def test_roundtrip(small):
    csr, dense = small
    assert np.array_equal(csr.to_dense(), dense)
    assert csr.nnz == np.count_nonzero(dense)


def test_from_coo_roundtrip(rng):
    dense = rng.standard_normal((7, 7))
    dense[np.abs(dense) < 0.8] = 0.0
    coo = COOMatrix.from_dense(dense)
    csr = CSRMatrix.from_coo(coo)
    assert np.array_equal(csr.to_dense(), dense)
    assert np.array_equal(csr.to_coo().to_dense(), dense)


def test_matvec(small, rng):
    csr, dense = small
    x = rng.standard_normal(4)
    assert np.allclose(csr.matvec(x), dense @ x)


def test_matvec_with_empty_rows():
    dense = np.zeros((4, 4))
    dense[0, 3] = 2.0
    dense[3, 0] = 5.0
    csr = CSRMatrix.from_dense(dense)
    x = np.arange(4.0)
    assert np.allclose(csr.matvec(x), dense @ x)


def test_diagonal(small):
    csr, dense = small
    assert np.array_equal(csr.diagonal(), np.diag(dense))


def test_diagonal_with_missing_entries():
    dense = np.array([[0.0, 1.0], [2.0, 3.0]])
    csr = CSRMatrix.from_dense(dense)
    assert np.array_equal(csr.diagonal(), [0.0, 3.0])


def test_tril_triu(small):
    csr, dense = small
    assert np.array_equal(csr.tril(strict=True).to_dense(),
                          np.tril(dense, -1))
    assert np.array_equal(csr.triu(strict=True).to_dense(),
                          np.triu(dense, 1))
    assert np.array_equal(csr.tril().to_dense(), np.tril(dense))
    assert np.array_equal(csr.triu().to_dense(), np.triu(dense))


def test_split_parts_reassemble(small):
    csr, dense = small
    total = (csr.tril(strict=True).to_dense()
             + np.diag(csr.diagonal())
             + csr.triu(strict=True).to_dense())
    assert np.array_equal(total, dense)


def test_permute_symmetric(small, rng):
    csr, dense = small
    perm = rng.permutation(4)
    permuted = csr.permute(perm)
    expect = np.zeros_like(dense)
    for i in range(4):
        for j in range(4):
            expect[perm[i], perm[j]] = dense[i, j]
    assert np.array_equal(permuted.to_dense(), expect)


def test_row_view(small):
    csr, dense = small
    cols, vals = csr.row(1)
    assert list(cols) == [0, 1, 2]
    assert np.allclose(vals, [-1.0, 4.0, -1.0])


def test_rows_sorted_after_unordered_input():
    indptr = [0, 2, 3]
    indices = [1, 0, 0]  # row 0 unsorted
    data = [2.0, 1.0, 3.0]
    csr = CSRMatrix(indptr, indices, data, (2, 2))
    cols, vals = csr.row(0)
    assert list(cols) == [0, 1]
    assert list(vals) == [1.0, 2.0]


def test_astype():
    csr = CSRMatrix.from_dense(np.eye(3))
    f32 = csr.astype(np.float32)
    assert f32.data.dtype == np.float32
    assert np.array_equal(f32.to_dense(), np.eye(3, dtype=np.float32))


def test_invalid_indptr_rejected():
    with pytest.raises(ValueError):
        CSRMatrix([0, 2], [0], [1.0], (2, 2))  # wrong length
    with pytest.raises(ValueError):
        CSRMatrix([0, 2, 1], [0, 1], [1.0, 2.0], (2, 2))  # decreasing


def test_column_out_of_range_rejected():
    with pytest.raises(ValueError):
        CSRMatrix([0, 1], [7], [1.0], (1, 2))


def test_memory_report(small):
    csr, _ = small
    rep = csr.memory_report()
    assert rep.format_name == "CSR"
    assert rep.arrays["row_ptr"] == 5 * 4
    assert rep.arrays["col_ind"] == csr.nnz * 4
    assert rep.arrays["values"] == csr.nnz * 8
    assert rep.total_bytes == 5 * 4 + csr.nnz * 12
