"""Tests for bench-runtime metrics collection and JSON emission."""

import json

import numpy as np
import pytest

from repro.runtime.metrics import (
    collect_bench_runtime,
    counter_to_dict,
    write_bench_json,
)
from repro.simd.counters import OpCounter

pytestmark = pytest.mark.fast


@pytest.fixture(scope="module")
def report():
    return collect_bench_runtime(nx=8, stencil="27pt", bsize=4,
                                 n_workers=2, repeats=1, pcg_iters=2)


def test_counter_to_dict_roundtrip():
    c = OpCounter(bsize=4, vload=3, vfma=2, bytes_values=96,
                  bytes_index=12, bytes_vector=160, bytes_gathered=0)
    d = counter_to_dict(c)
    assert d["bsize"] == 4
    assert d["ops"]["vload"] == 3
    assert d["bytes"]["values"] == 96
    assert d["bytes"]["total"] == 96 + 12 + 160
    assert d["flops"] == c.flops()


def test_report_covers_required_kernels(report):
    for name in ("sptrsv_dbsr_lower", "sptrsv_dbsr_upper",
                 "spmv_dbsr", "spmv_csr", "symgs_dbsr"):
        entry = report["kernels"][name]
        assert entry["seconds"] > 0
        counts = entry["counts"]
        assert counts["bytes"]["total"] > 0
        assert set(counts["bytes"]) == {"values", "index", "vector",
                                        "gathered", "total"}
        assert counts["ops"]["vfma"] + counts["ops"]["sflop"] > 0


def test_report_sptrsv_has_parallel_speedup_fields(report):
    entry = report["kernels"]["sptrsv_dbsr_lower"]
    assert entry["seconds_parallel"] > 0
    assert entry["speedup_vs_sequential"] == pytest.approx(
        entry["seconds"] / entry["seconds_parallel"])


def test_report_single_pool_and_phases(report):
    assert report["session"]["pools_created"] == 1
    phases = report["phases"]
    for name in ("reorder", "convert", "sweep", "spmv", "symgs",
                 "vcycle"):
        assert phases[name]["seconds"] > 0, name
        assert phases[name]["calls"] >= 1, name
    # The sweep phase saw the parallel sweeps' traffic.
    assert phases["sweep"]["counter"]["bytes"]["total"] > 0
    assert phases["symgs"]["counter"]["bytes"]["total"] > 0


def test_report_dbsr_is_gather_free(report):
    for name in ("sptrsv_dbsr_lower", "sptrsv_dbsr_upper",
                 "spmv_dbsr", "symgs_dbsr"):
        counts = report["kernels"][name]["counts"]
        assert counts["ops"]["vgather"] == 0, name
        assert counts["bytes"]["gathered"] == 0, name
    assert report["kernels"]["spmv_csr"]["counts"]["bytes"][
        "gathered"] > 0


def test_write_bench_json(report, tmp_path):
    path = str(tmp_path / "BENCH_runtime.json")
    assert write_bench_json(report, path) == path
    with open(path) as fh:
        loaded = json.load(fh)
    assert loaded["schema"] == "dbsr-repro/bench-runtime/v1"
    assert loaded["config"]["nx"] == 8
    assert loaded["kernels"].keys() == report["kernels"].keys()


def test_f32_report_halves_value_bytes():
    r64 = collect_bench_runtime(nx=4, stencil="7pt", bsize=2,
                                n_workers=2, repeats=1, pcg_iters=1)
    r32 = collect_bench_runtime(nx=4, stencil="7pt", bsize=2,
                                n_workers=2, repeats=1, pcg_iters=1,
                                dtype="f32")
    b64 = r64["kernels"]["sptrsv_dbsr_lower"]["counts"]["bytes"]
    b32 = r32["kernels"]["sptrsv_dbsr_lower"]["counts"]["bytes"]
    assert b32["values"] * 2 == b64["values"]
    assert r32["config"]["dtype"] == "float32"
