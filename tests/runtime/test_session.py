"""Tests for the persistent SolverSession runtime."""

import numpy as np
import pytest

from repro.formats.dbsr import DBSRMatrix
from repro.ilu.ilu0_dbsr import ilu0_apply_dbsr, ilu0_factorize_dbsr
from repro.ilu.parallel_apply import ilu0_apply_dbsr_parallel
from repro.kernels.sptrsv_csr import split_triangular
from repro.parallel.executor import (
    pool_stats,
    sptrsv_dbsr_lower_parallel,
    sptrsv_dbsr_upper_parallel,
)
from repro.runtime.session import SolverSession
from repro.simd.counters import OpCounter
from repro.solvers.pcg import pcg

pytestmark = pytest.mark.fast


@pytest.fixture(scope="module")
def setup():
    from repro.grids.problems import poisson_problem
    from repro.ordering.vbmc import build_vbmc

    p = poisson_problem((8, 8, 8), "27pt")
    vb = build_vbmc(p.grid, p.stencil, (2, 2, 2), 4)
    csr = vb.apply_matrix(p.matrix)
    factors = ilu0_factorize_dbsr(DBSRMatrix.from_csr(csr, 4))
    return p, vb, csr, factors


def test_pool_is_lazy_and_single(setup):
    p, vb, csr, factors = setup
    with SolverSession(n_workers=2) as s:
        assert s.pools_created == 0  # nothing requested yet
        r = np.ones(csr.n_rows)
        for _ in range(3):
            ilu0_apply_dbsr_parallel(factors, r, vb.schedule, session=s)
        assert s.pools_created == 1


def test_full_pcg_solve_creates_exactly_one_pool(setup):
    """A complete PCG solve — parallel ILU(0) preconditioning every
    iteration — constructs exactly one thread pool, process-wide."""
    p, vb, csr, factors = setup
    b = csr.matvec(np.ones(csr.n_rows))
    before = pool_stats.created
    with SolverSession(n_workers=4) as s:

        def precond(r):
            return ilu0_apply_dbsr_parallel(factors, r, vb.schedule,
                                            session=s)

        x, hist = pcg(csr, b, precond, tol=1e-8, maxiter=50, session=s)
        assert hist.iterations > 1  # the pool really was reused
        assert np.allclose(x, 1.0, atol=1e-5)
        assert s.pools_created == 1
    assert pool_stats.created == before + 1


def test_parallel_ilu_apply_bit_identical_and_counted(setup):
    p, vb, csr, factors = setup
    rng = np.random.default_rng(7)
    r = rng.standard_normal(csr.n_rows)
    ref = ilu0_apply_dbsr(factors, r)
    c = OpCounter(bsize=4)
    for workers in (1, 2, 4):
        got = ilu0_apply_dbsr_parallel(factors, r, vb.schedule,
                                       n_workers=workers)
        assert np.array_equal(got, ref), workers
    got = ilu0_apply_dbsr_parallel(factors, r, vb.schedule,
                                   n_workers=4, counter=c)
    assert np.array_equal(got, ref)
    # Exact op totals from the factored skeleton: one FMA per
    # off-diagonal tile, one divide per block-row.
    m = factors.matrix
    n_lower = int((factors.dia_ptr - m.blk_ptr[:-1]).sum())
    n_upper = int((m.blk_ptr[1:] - factors.dia_ptr - 1).sum())
    assert c.vfma == n_lower + n_upper
    assert c.vdiv == m.brow
    assert c.bytes_values == (n_lower + n_upper + m.brow) \
        * m.bsize * m.values.itemsize


def test_session_sweep_counts_match_closed_form(setup):
    from repro.kernels.counts import sptrsv_dbsr_counts

    p, vb, csr, factors = setup
    L, D, U = split_triangular(csr)
    Ld = DBSRMatrix.from_csr(L, 4)
    Ud = DBSRMatrix.from_csr(U, 4)
    b = np.ones(csr.n_rows)
    with SolverSession(n_workers=2) as s:
        sptrsv_dbsr_lower_parallel(Ld, b, vb.schedule, diag=D,
                                   session=s)
        sptrsv_dbsr_upper_parallel(Ud, b, vb.schedule, diag=D,
                                   session=s)
        expect = sptrsv_dbsr_counts(Ld, divide=True)
        expect.merge(sptrsv_dbsr_counts(Ud, divide=True))
        assert s.counter.vfma == expect.vfma
        assert s.counter.total_bytes == expect.total_bytes
        assert s.pools_created == 1


def test_phase_records_time_and_counter_delta(setup):
    p, vb, csr, factors = setup
    L, D, _ = split_triangular(csr)
    Ld = DBSRMatrix.from_csr(L, 4)
    b = np.ones(csr.n_rows)
    with SolverSession(n_workers=2) as s:
        with s.phase("sweep"):
            sptrsv_dbsr_lower_parallel(Ld, b, vb.schedule, diag=D,
                                       session=s)
        with s.phase("sweep"):
            sptrsv_dbsr_lower_parallel(Ld, b, vb.schedule, diag=D,
                                       session=s)
        rec = s.phases["sweep"]
        assert rec.calls == 2
        assert rec.seconds > 0
        # The phase delta saw everything the session tallied.
        assert rec.counter.total_bytes == s.counter.total_bytes
        assert rec.counter.vfma == s.counter.vfma > 0


def test_timed_wrapper_records_calls():
    with SolverSession() as s:
        fn = s.timed("spmv", lambda v: v * 2)
        assert fn(21) == 42
        assert fn(1) == 2
        assert s.phases["spmv"].calls == 2


def test_worker_counters_merge_on_drain(setup):
    p, vb, csr, factors = setup
    with SolverSession(n_workers=4) as s:

        def task(group):
            c = s.worker_counter()
            c.vfma += 1
            c.bytes_vector += 8

        ex = s.executor(vb.schedule)
        ex.run_forward(task)
        s.drain_workers()
        assert s.counter.vfma == vb.schedule.n_groups
        assert s.counter.bytes_vector == 8 * vb.schedule.n_groups
        s.drain_workers()  # idempotent: locals were reset
        assert s.counter.vfma == vb.schedule.n_groups


def test_session_close_allows_reopen(setup):
    p, vb, csr, factors = setup
    s = SolverSession(n_workers=2)
    r = np.ones(csr.n_rows)
    ilu0_apply_dbsr_parallel(factors, r, vb.schedule, session=s)
    s.close()
    # A new pool is created on next use after close().
    ilu0_apply_dbsr_parallel(factors, r, vb.schedule, session=s)
    assert s.pools_created == 2
    s.close()
