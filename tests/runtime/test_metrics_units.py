"""Direct unit tests for runtime/metrics.py internals.

The report-level tests in test_metrics.py exercise these through
``collect_bench_runtime``; here ``_best_of`` and ``_kernel_entry``
are pinned in isolation.
"""

from __future__ import annotations

import math

from repro.runtime.metrics import _best_of, _kernel_entry
from repro.simd.counters import OpCounter


def test_best_of_runs_fn_repeats_times():
    calls = []
    assert _best_of(lambda: calls.append(1), 5) >= 0.0
    assert len(calls) == 5


def test_best_of_clamps_repeats_to_at_least_one():
    calls = []
    _best_of(lambda: calls.append(1), 0)
    _best_of(lambda: calls.append(1), -3)
    assert len(calls) == 2


def test_best_of_returns_minimum_timing():
    import time

    durations = iter([0.05, 0.0])

    def fn():
        time.sleep(next(durations))

    best = _best_of(fn, 2)
    # The fast (no-sleep) repeat wins; a mean would exceed 25 ms.
    assert 0.0 <= best < 0.025


def _counter():
    c = OpCounter(bsize=4)
    c.vfma = 10
    c.bytes_values = 320
    return c


def test_kernel_entry_sequential_only():
    entry = _kernel_entry(_counter(), seconds=0.5)
    assert entry["seconds"] == 0.5
    assert entry["counts"]["ops"]["vfma"] == 10
    assert "seconds_parallel" not in entry
    assert "speedup_vs_sequential" not in entry


def test_kernel_entry_parallel_speedup():
    entry = _kernel_entry(_counter(), seconds=1.0,
                          seconds_parallel=0.25)
    assert entry["seconds_parallel"] == 0.25
    assert entry["speedup_vs_sequential"] == 4.0


def test_kernel_entry_zero_parallel_time_is_nan_not_crash():
    entry = _kernel_entry(_counter(), seconds=1.0,
                          seconds_parallel=0.0)
    assert math.isnan(entry["speedup_vs_sequential"])
