"""Tests for the bsize sweep (Fig. 10) and storage sweep (Fig. 11)."""

import pytest

from repro.grids.problems import poisson_problem
from repro.perfmodel.bsize_model import bsize_sweep, storage_sweep
from repro.simd.machine import INTEL_XEON


@pytest.fixture(scope="module")
def problem():
    return poisson_problem((8, 8, 8), "27pt")


def test_bsize_sweep_returns_all_points(problem):
    res = bsize_sweep(problem, INTEL_XEON, bsizes=(1, 2, 4),
                      threads=8, scale=64.0)
    assert set(res) == {1, 2, 4}
    assert all(v > 0 for v in res.values())


def test_simd_bsize_beats_bsize_one(problem):
    """Fig. 10: vector blocks beat the scalar bsize=1 layout."""
    res = bsize_sweep(problem, INTEL_XEON, bsizes=(1, 8), threads=8,
                      scale=(256 / 8) ** 3)
    assert res[8] < res[1]


def test_storage_sweep_rows(problem):
    rows = storage_sweep(problem, bsizes=(1, 2, 4, 8))
    assert len(rows) == 4
    for bs, csr_total, idx, nnzb, pad, total in rows:
        assert total == idx + nnzb + pad
        assert pad >= 0


def test_storage_indices_shrink_with_bsize(problem):
    rows = storage_sweep(problem, bsizes=(1, 2, 4, 8))
    idx = [r[2] for r in rows]
    assert idx == sorted(idx, reverse=True)


def test_storage_padding_grows_with_bsize(problem):
    rows = storage_sweep(problem, bsizes=(1, 8))
    assert rows[1][4] >= rows[0][4]


def test_dbsr_total_below_csr_at_moderate_bsize(problem):
    """Fig. 11: total DBSR bytes drop below CSR once bsize >= ~4."""
    rows = storage_sweep(problem, bsizes=(4, 8), bsize_offset_bytes=1)
    for bs, csr_total, idx, nnzb, pad, total in rows:
        assert total < csr_total
