"""Integration tests for the Fig. 9 / Fig. 12 ILU performance model.

These run the *measured* part (real reorderings, real factorizations,
real iteration counts) on a small grid and extrapolate counts to the
paper's scale, asserting the figure's qualitative shape.
"""

import pytest

from repro.grids.problems import poisson_problem
from repro.perfmodel.ilu_model import (
    ilu_factorization_costs,
    ilu_smoothing_speedups,
    ilu_strategy_report,
)
from repro.simd.machine import INTEL_XEON

SCALE = (256 / 8) ** 3  # model counts at 8^3, evaluate at paper's 256^3


@pytest.fixture(scope="module")
def problem():
    return poisson_problem((8, 8, 8), "7pt")


@pytest.fixture(scope="module")
def speedups(problem):
    return ilu_smoothing_speedups(
        problem, INTEL_XEON, thread_counts=[1, 8, 32],
        strategies=("bj", "mc", "bmc-fix", "dbsr-fix", "simd-fix"),
        bsize=4, tol=1e-8, scale=SCALE)


def test_serial_baseline_positive(speedups):
    assert speedups["_serial_seconds"] > 0
    assert speedups["_serial_iterations"] > 0


def test_speedups_grow_with_threads(speedups):
    for name in ("bj", "bmc-fix", "dbsr-fix"):
        vals = speedups[name]
        assert vals[-1] > vals[0], name


def test_mc_worse_than_bmc_at_scale(speedups):
    """§V-E: 'The MC method performs poorly because it requires
    significantly more iterations.'"""
    assert speedups["mc"][-1] < speedups["bmc-fix"][-1]


def test_simd_dbsr_best_at_low_threads(speedups):
    assert speedups["simd-fix"][0] >= speedups["dbsr-fix"][0]
    assert speedups["simd-fix"][0] >= speedups["bmc-fix"][0]


def test_dbsr_at_least_matches_bmc_at_scale(speedups):
    """Fig. 9: DBSR outperforms BMC by 11-17% (f64)."""
    assert speedups["dbsr-fix"][-1] >= 0.95 * speedups["bmc-fix"][-1]


def test_single_precision_gains_more(problem):
    """§V-F: single precision profits more because indices are a
    larger share of the traffic."""
    f64 = ilu_smoothing_speedups(
        problem, INTEL_XEON, thread_counts=[32],
        strategies=("bmc-fix", "simd-fix"), bsize=4,
        dtype_bytes=8, scale=SCALE)
    f32 = ilu_smoothing_speedups(
        problem, INTEL_XEON, thread_counts=[32],
        strategies=("bmc-fix", "simd-fix"), bsize=4,
        dtype_bytes=4, scale=SCALE)
    adv64 = f64["simd-fix"][0] / f64["bmc-fix"][0]
    adv32 = f32["simd-fix"][0] / f32["bmc-fix"][0]
    assert adv32 >= adv64 * 0.98


def test_factorization_costs_shape(problem):
    """Fig. 12: DBSR factorization costs about one smoothing sweep."""
    costs = ilu_factorization_costs(
        problem, INTEL_XEON, thread_counts=[8],
        strategies=("mc", "bmc-fix", "simd-auto"), bsize=4,
        scale=SCALE)
    assert costs["simd-auto"][0] < costs["mc"][0]
    assert costs["simd-auto"][0] < 8.0  # around one smoothing, not 10s


def test_strategy_report_contents(problem):
    rep = ilu_strategy_report(problem, "dbsr-fix", n_workers=4,
                              bsize=4, tol=1e-8)
    assert rep.converged
    assert rep.iterations > 0
    assert rep.smoothing_spec.counter.vfma > 0
    assert rep.factor_spec.counter.vdiv > 0
    # At paper scale the per-color parallelism feeds all 8 threads.
    t1 = rep.solve_seconds(INTEL_XEON, 1, scale=SCALE)
    t8 = rep.solve_seconds(INTEL_XEON, 8, scale=SCALE)
    assert t8 < t1
