"""Unit tests for KernelSpec."""

import pytest

from repro.perfmodel.specs import KernelSpec
from repro.simd.counters import OpCounter
from repro.simd.machine import INTEL_XEON


def spec(**kw):
    c = OpCounter(bsize=8, vload=10**6, vfma=10**6,
                  bytes_vector=8 * 10**6)
    return KernelSpec(counter=c, **kw)


def test_seconds_scale_with_sweeps():
    s = spec(parallelism=1000.0)
    assert s.seconds(INTEL_XEON, 8, sweeps=10) == pytest.approx(
        10 * s.seconds(INTEL_XEON, 8, sweeps=1))


def test_parallelism_caps_speedup():
    capped = spec(parallelism=2.0)
    free = spec(parallelism=1e9)
    assert capped.seconds(INTEL_XEON, 56) > free.seconds(INTEL_XEON, 56)


def test_scaled_multiplies_counts_and_parallelism():
    s = spec(parallelism=4.0, barriers=6)
    big = s.scaled(10.0)
    assert big.counter.vload == 10**7
    assert big.parallelism == 40.0
    assert big.barriers == 6  # barriers do not scale


def test_scaled_respects_fixed_parallelism():
    s = spec(parallelism=1.0, parallelism_scales=False)
    big = s.scaled(100.0)
    assert big.parallelism == 1.0


def test_barriers_add_time():
    with_sync = spec(parallelism=1e9, barriers=100)
    without = spec(parallelism=1e9, barriers=0)
    assert with_sync.seconds(INTEL_XEON, 56) > \
        without.seconds(INTEL_XEON, 56)


def test_vectorized_faster_than_scalar():
    vec = spec(parallelism=1e9, vectorized=True)
    sca = spec(parallelism=1e9, vectorized=False)
    assert vec.seconds(INTEL_XEON, 1) < sca.seconds(INTEL_XEON, 1)


def test_float32_faster_than_float64():
    """On NEON (2 f64 lanes), halving the element size halves the
    instruction count of a bsize-8 logical vector."""
    from repro.simd.machine import KUNPENG_920

    s = spec(parallelism=1e9)
    f64 = s.seconds(KUNPENG_920, 1)
    s32 = KernelSpec(counter=s.counter, parallelism=1e9, dtype_bytes=4)
    assert s32.seconds(KUNPENG_920, 1) < f64
