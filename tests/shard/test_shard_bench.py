"""shard-bench report: gates, schema conformance, CLI wiring."""

import json

import pytest

from repro.observe.schema_check import TraceSchemaError, validate_report
from repro.shard.bench import collect_bench_shard

pytestmark = pytest.mark.fast

SCHEMA = "tests/shard/bench_shard.schema.json"


@pytest.fixture(scope="module")
def report():
    # Small but structurally complete: 3-D 27pt with a (3,3,3) process
    # grid keeps an interior rank, so the closed-form halo check runs.
    return collect_bench_shard(nx=6, n_ranks=8, proc_grid=(2, 2, 2),
                               n_requests=12, max_batch=4)


def test_report_passes_all_gates(report):
    assert report["ok"] is True
    assert all(report["gates"].values()), report["gates"]
    assert report["per_shard_hit_rate_min"] >= 0.90
    assert all(report["identity"].values())
    assert report["service"]["failed"] == 0


def test_report_matches_checked_in_schema(report):
    validate_report(report, schema_path=SCHEMA)


def test_schema_check_rejects_mutants(report):
    bad = json.loads(json.dumps(report))
    bad["schema"] = "dbsr-repro/bench-shard/v0"
    with pytest.raises(TraceSchemaError):
        validate_report(bad, schema_path=SCHEMA)
    bad = json.loads(json.dumps(report))
    del bad["halo"]
    with pytest.raises(TraceSchemaError):
        validate_report(bad, schema_path=SCHEMA)


def test_closed_form_halo_present_for_interior_rank():
    rep = collect_bench_shard(nx=9, n_ranks=27, proc_grid=(3, 3, 3),
                              n_requests=8, max_batch=4)
    cf = rep["halo"]["closed_form"]
    assert cf is not None
    assert cf["bytes_match"] and cf["neighbors_match"]
    # 9^3 over (3,3,3): the interior rank owns a 3x3x3 brick whose
    # 27pt halo is 5^3 - 3^3 = 98 ghosts = 784 bytes at f64.
    assert cf["expected_bytes"] == 98 * 8
    assert cf["expected_neighbors"] == 26


def test_closed_form_skipped_without_interior_rank():
    rep = collect_bench_shard(nx=6, n_ranks=4, proc_grid=(2, 2, 1),
                              n_requests=4, max_batch=4)
    assert rep["halo"]["closed_form"] is None
    assert rep["gates"]["halo_closed_form_match"] is True  # vacuous


def test_halo_bytes_match_request_metrics(report):
    halo = report["halo"]
    assert halo["bytes_match_requests"]
    assert halo["measured"]["bytes"] == \
        halo["expected_bytes_from_requests"]


def test_cli_shard_bench_writes_valid_report(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_shard.json"
    rc = main(["shard-bench", "--nx", "6", "--ranks", "8",
               "--requests", "12", "--max-batch", "4",
               "--out", str(out)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "per-shard cache hit rate" in text
    validate_report(json.loads(out.read_text()), schema_path=SCHEMA)
