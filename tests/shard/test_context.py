"""Bit-identity of the sharded ops across decompositions.

The acceptance bar for the sharding layer: for every op, the sharded
execution equals the equivalent global computation bit-for-bit — on
multiple process grids and multiple stencils, including uneven bricks.
SpMV is compared against the true global matvec; the block-Jacobi
triangular/SYMGS ops are compared against the reference twin (fresh
compiles + clean ordered-CSR kernels), whose per-brick operator is in
turn proven equal to the global matrix's diagonal block.
"""

import numpy as np
import pytest

from repro.grids.assembly import assemble_csr
from repro.grids.grid import StructuredGrid
from repro.serve.plan import PLAN_OPS, PlanConfig
from repro.shard.context import ShardContext, sharded_execute
from repro.shard.reference import (
    ReferenceExecutor,
    reference_sharded_solve,
)

pytestmark = pytest.mark.fast

#: >=2 process grids x >=2 stencils, none dividing evenly everywhere.
CASES = [
    ((7, 6, 5), "27pt", (2, 2, 2)),
    ((7, 6, 5), "7pt", (2, 2, 2)),
    ((9, 9, 9), "27pt", (3, 3, 3)),
    ((7, 5), "9pt", (3, 2)),
    ((7, 5), "5pt", (2, 2)),
]


def _ctx(dims, stencil, pg):
    return ShardContext(StructuredGrid(dims), stencil,
                        PlanConfig(bsize=2, machine="kp920"),
                        n_ranks=int(np.prod(pg)), proc_grid=pg)


@pytest.mark.parametrize("dims,stencil,pg", CASES)
def test_brick_operator_is_global_diagonal_block(dims, stencil, pg):
    """Each shard's standalone brick operator equals the global
    matrix's diagonal block exactly — the keystone that makes
    block-Jacobi plans act on the true operator."""
    ctx = _ctx(dims, stencil, pg)
    for r in ctx.dist.ranks:
        brick = assemble_csr(StructuredGrid(r.brick_dims), ctx.stencil)
        block = r.owned_block
        assert np.array_equal(block.indptr, brick.indptr)
        assert np.array_equal(block.indices, brick.indices)
        assert np.array_equal(block.data, brick.data)


@pytest.mark.parametrize("dims,stencil,pg", CASES)
def test_sharded_spmv_bitwise_global(dims, stencil, pg, rng):
    ctx = _ctx(dims, stencil, pg)
    ref = ReferenceExecutor(ctx)
    x = rng.standard_normal(ctx.grid.n_points)
    got = sharded_execute(ctx, "spmv", x, ref)
    assert np.array_equal(got, ctx.dist.problem.matrix.matvec(x))


@pytest.mark.parametrize("dims,stencil,pg", CASES[:3])
def test_all_ops_bitwise_reference_twin(dims, stencil, pg, rng):
    """Two independent executors (DBSR plans vs fresh ordered-CSR)
    agree bit-for-bit on every op, single and batched RHS."""
    from repro.resilience.fallback import FallbackChain
    from repro.serve.cache import PlanCache
    from repro.shard.context import ShardExecutor

    ctx = _ctx(dims, stencil, pg)
    ref = ReferenceExecutor(ctx)

    class CachedExecutor(ShardExecutor):
        def __init__(self):
            self.caches = [PlanCache() for _ in ctx.brick_grids]
            self.plans = [c.get_or_compile(bg, ctx.stencil,
                                           ctx.config)[0]
                          for c, bg in zip(self.caches,
                                           ctx.brick_grids)]
            self.chain = FallbackChain(cache=None)

        def solve(self, i, op, B):
            return self.plans[i].execute(op, B)

        def lower_product(self, i, X):
            from repro.shard.context import permuted_lower_product

            return permuted_lower_product(self.plans[i], X)

    cached = CachedExecutor()
    B = rng.standard_normal((ctx.grid.n_points, 3))
    for op in PLAN_OPS:
        got = sharded_execute(ctx, op, B, cached)
        want = reference_sharded_solve(ctx, op, B, executor=ref)
        assert np.array_equal(got, want), op
        # Single-RHS path agrees with the batched columns.
        got1 = sharded_execute(ctx, op, B[:, 0], cached)
        assert np.array_equal(got1, got[:, 0]), op


def test_symgs_exchanges_once_triangular_never(rng):
    ctx = _ctx((6, 5, 4), "27pt", (2, 2, 1))
    ref = ReferenceExecutor(ctx)
    calls = []
    b = rng.standard_normal(ctx.grid.n_points)
    for op, expected in [("lower", 0), ("upper", 0),
                         ("spmv", 1), ("symgs", 1)]:
        calls.clear()
        sharded_execute(ctx, op, b, ref,
                        on_exchange=lambda s: calls.append(s))
        assert len(calls) == expected, op
        assert ctx.halo_bytes_per_solve(op) == sum(
            c["bytes"] for c in calls)


def test_halo_bytes_per_solve_closed_form():
    ctx = _ctx((6, 5, 4), "27pt", (2, 2, 1))
    ghosts = sum(r.n_ghost for r in ctx.dist.ranks)
    assert ctx.halo_bytes_per_solve("spmv", k=3) == ghosts * 3 * 8
    assert ctx.halo_bytes_per_solve("lower", k=3) == 0


def test_bad_op_and_shape_rejected(rng):
    ctx = _ctx((5, 4), "5pt", (2, 2))
    ref = ReferenceExecutor(ctx)
    with pytest.raises(ValueError):
        sharded_execute(ctx, "cholesky", rng.standard_normal(20), ref)
    with pytest.raises(ValueError):
        sharded_execute(ctx, "lower", rng.standard_normal(7), ref)
