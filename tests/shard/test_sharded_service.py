"""ShardedSolveService: submit/drain, fault isolation, halo counters."""

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.serve.plan import PlanConfig, structural_fingerprint
from repro.serve.service import Backpressure, RequestError
from repro.shard.context import ShardContext, sharded_execute
from repro.shard.reference import ReferenceExecutor
from repro.shard.service import ShardedSolveService

CFG = PlanConfig(bsize=2, n_workers=2, machine="kp920")
GRID = StructuredGrid((7, 6, 5))
N = GRID.n_points
PG = (2, 2, 1)
NRANKS = 4


@pytest.fixture()
def service():
    with ShardedSolveService(n_ranks=NRANKS, proc_grid=PG, config=CFG,
                             max_batch=4, max_pending=16) as svc:
        yield svc


def _reference(op, B):
    ctx = ShardContext(GRID, "27pt", CFG, n_ranks=NRANKS, proc_grid=PG)
    return sharded_execute(ctx, op, B, ReferenceExecutor(ctx))


def test_submit_drain_bitwise_reference(service, rng):
    """Every op served through the sharded frontend equals the
    reference twin bit-for-bit."""
    rhss = {op: rng.standard_normal(N)
            for op in ("lower", "upper", "symgs", "spmv")}
    tickets = {op: service.submit(GRID, "27pt", b, op=op)
               for op, b in rhss.items()}
    assert service.drain() == 4
    for op, t in tickets.items():
        assert np.array_equal(t.result(), _reference(op, rhss[op])), op


def test_coalesced_batch_bitwise_solo(service, rng):
    rhss = [rng.standard_normal(N) for _ in range(4)]
    tickets = [service.submit(GRID, "27pt", b, op="symgs")
               for b in rhss]
    service.drain()
    assert all(t.metrics["batch_k"] == 4 for t in tickets)
    assert service.batches_executed == 1
    for t, b in zip(tickets, rhss):
        assert np.array_equal(t.result(), _reference("symgs", b))


def test_per_shard_caches_do_the_compiling(service, rng):
    tickets = [service.submit(GRID, "27pt", rng.standard_normal(N))
               for _ in range(3)]
    service.drain()
    assert service.cache is None  # no global cache in the sharded path
    for shard in service.shards:
        st = shard.cache.stats()
        assert st["compiles"] == 1
        assert st["misses"] == 1 and st["hits"] == 2
    hits = [t.metrics["cache_hit"] for t in tickets]
    assert hits == [False, True, True]


def test_per_shard_bsize_autotuned_for_brick(rng):
    """With bsize unset, each shard autotunes its own brick; uneven
    bricks are allowed to pick different bsizes, and the request
    metrics report the whole vector."""
    cfg = PlanConfig(bsize=None, n_workers=2, machine="kp920")
    with ShardedSolveService(n_ranks=NRANKS, proc_grid=PG, config=cfg,
                             max_batch=4) as svc:
        t = svc.submit(GRID, "27pt", rng.standard_normal(N))
        svc.drain()
        bsizes = t.metrics["bsize_per_shard"]
        assert len(bsizes) == NRANKS
        assert bsizes == [
            svc.shards[i].cache.peek(
                structural_fingerprint(bg, "27pt", cfg)).bsize
            for i, bg in enumerate(
                svc._contexts[t.fingerprint].brick_grids)]


def test_halo_counters_and_metrics(service, rng):
    b = rng.standard_normal(N)
    t_spmv = service.submit(GRID, "27pt", b, op="spmv")
    t_low = service.submit(GRID, "27pt", b, op="lower")
    service.drain()
    ctx = service._contexts[t_spmv.fingerprint]
    per_solve = sum(r.n_ghost for r in ctx.dist.ranks) * 8
    assert t_spmv.metrics["halo_bytes_per_solve"] == per_solve
    assert t_low.metrics["halo_bytes_per_solve"] == 0
    halo = service.halo_stats()
    assert halo["exchanges"] == 1  # spmv only; lower exchanges nothing
    assert halo["bytes"] == per_solve
    assert halo["messages"] == sum(
        len(r.neighbor_ranks) for r in ctx.dist.ranks)
    # The registry counters mirror halo_stats.
    snap = service.metrics.snapshot()
    assert snap["shard.halo_bytes"]["value"] == halo["bytes"]
    assert snap["shard.exchanges"]["value"] == 1


def test_fault_on_one_shard_heals_without_failing_siblings(service,
                                                           rng):
    """Acceptance: a forced fault on a single shard recovers in place
    (invalidate + recompile through that shard's chain) and neither
    the request nor any sibling shard fails."""
    b = rng.standard_normal(N)
    warm = service.submit(GRID, "27pt", b)
    service.drain()
    assert warm.done and warm._error is None

    victim = 1
    fp = structural_fingerprint(
        service._contexts[warm.fingerprint].brick_grids[victim],
        "27pt", CFG)
    plan = service.shards[victim].cache.peek(fp)
    plan.lower.values[0] = np.nan  # sealed digest now mismatches

    t = service.submit(GRID, "27pt", b)
    assert service.drain() == 1
    assert t._error is None
    assert np.array_equal(t.result(), _reference("lower", b))

    hurt = service.shards[victim].chain
    assert hurt.faults_detected >= 1
    assert hurt.recovered >= 1
    assert service.shards[victim].cache.stats()["invalidations"] == 1
    for i, shard in enumerate(service.shards):
        if i == victim:
            continue
        assert shard.chain.faults_detected == 0
        assert shard.cache.stats()["invalidations"] == 0
    assert service.failed == 0


def test_undecomposable_grid_rejected_at_submit(service, rng):
    # 2-D request against a 3-D process grid: arity mismatch.
    with pytest.raises(RequestError):
        service.submit(StructuredGrid((6, 6)), "5pt",
                       rng.standard_normal(36))
    # More ranks along a dimension than points.
    tiny = StructuredGrid((1, 6, 5))
    with pytest.raises(RequestError):
        service.submit(tiny, "27pt", rng.standard_normal(30))
    assert service.submitted == 0


def test_proc_grid_must_match_n_ranks():
    with pytest.raises(ValueError):
        ShardedSolveService(n_ranks=4, proc_grid=(3, 1, 1))


def test_backpressure_inherited(service, rng):
    for _ in range(16):
        service.submit(GRID, "27pt", rng.standard_normal(N))
    with pytest.raises(Backpressure):
        service.submit(GRID, "27pt", rng.standard_normal(N))
    assert service.drain() == 16


def test_context_lru_bounded(rng):
    with ShardedSolveService(n_ranks=2, proc_grid=(2, 1, 1),
                             config=CFG, max_contexts=2) as svc:
        for nx in (4, 5, 6):
            g = StructuredGrid((nx, 3, 3))
            svc.submit(g, "27pt", rng.standard_normal(g.n_points))
            svc.drain()
        assert len(svc._contexts) == 2
        assert svc.stats()["contexts"] == 2


def test_stats_shape(service, rng):
    service.submit(GRID, "27pt", rng.standard_normal(N))
    service.drain()
    st = service.stats()
    assert st["n_ranks"] == NRANKS
    assert len(st["shards"]) == NRANKS
    assert {"exchanges", "bytes", "messages"} <= st["halo"].keys()
    assert "cache" not in st  # the global-cache key is gone
    for shard_st in st["shards"]:
        assert shard_st["cache"]["compiles"] == 1
        assert shard_st["resilience"] is not None


def test_resilience_false_runs_clean_path(rng):
    b = rng.standard_normal(N)
    with ShardedSolveService(n_ranks=2, proc_grid=(2, 1, 1),
                             config=CFG, resilience=False) as svc:
        t = svc.submit(GRID, "27pt", b, op="symgs")
        svc.drain()
        assert t._error is None
        assert all(s.chain is None for s in svc.shards)
        ctx = ShardContext(GRID, "27pt", CFG, n_ranks=2,
                           proc_grid=(2, 1, 1))
        want = sharded_execute(ctx, "symgs", b,
                               ReferenceExecutor(ctx))
        assert np.array_equal(t.result(), want)


def test_persist_dir_per_shard(tmp_path, rng):
    cfg = PlanConfig(bsize=None, n_workers=2, machine="kp920")
    with ShardedSolveService(n_ranks=2, proc_grid=(2, 1, 1),
                             config=cfg,
                             persist_dir=str(tmp_path)) as svc:
        svc.submit(GRID, "27pt", rng.standard_normal(N))
        svc.drain()
    files = sorted(p.name for p in tmp_path.iterdir())
    assert files == ["shard0.json", "shard1.json"]
