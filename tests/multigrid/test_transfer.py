"""Unit tests for inter-grid transfers."""

import numpy as np

from repro.grids.coarsen import coarsen_grid, fine_to_coarse_map
from repro.grids.grid import StructuredGrid
from repro.multigrid.transfer import prolong_add, restrict_inject


def test_restrict_samples_even_points(rng):
    fine = StructuredGrid((4, 4))
    coarse = coarsen_grid(fine)
    f2c = fine_to_coarse_map(fine, coarse)
    v = rng.standard_normal(fine.n_points)
    rc = restrict_inject(v, f2c)
    assert rc.shape == (coarse.n_points,)
    assert np.array_equal(rc, v[f2c])


def test_prolong_adds_in_place(rng):
    fine = StructuredGrid((4, 4))
    coarse = coarsen_grid(fine)
    f2c = fine_to_coarse_map(fine, coarse)
    x = np.zeros(fine.n_points)
    xc = rng.standard_normal(coarse.n_points)
    prolong_add(x, xc, f2c)
    assert np.allclose(x[f2c], xc)
    mask = np.ones(fine.n_points, dtype=bool)
    mask[f2c] = False
    assert np.all(x[mask] == 0.0)


def test_restrict_prolong_adjoint_on_injected_points(rng):
    """<R v, w>_coarse == <v, P w>_fine for injection operators."""
    fine = StructuredGrid((8, 8))
    coarse = coarsen_grid(fine)
    f2c = fine_to_coarse_map(fine, coarse)
    v = rng.standard_normal(fine.n_points)
    w = rng.standard_normal(coarse.n_points)
    lhs = restrict_inject(v, f2c) @ w
    pw = np.zeros(fine.n_points)
    prolong_add(pw, w, f2c)
    rhs = v @ pw
    assert np.isclose(lhs, rhs)


def test_restrict_returns_copy(rng):
    fine = StructuredGrid((4, 4))
    coarse = coarsen_grid(fine)
    f2c = fine_to_coarse_map(fine, coarse)
    v = rng.standard_normal(fine.n_points)
    rc = restrict_inject(v, f2c)
    rc[:] = 0
    assert not np.all(v[f2c] == 0)
