"""Tests for the fused V-cycle."""

import numpy as np
import pytest

from repro.multigrid.fused_vcycle import (
    FusedMGPreconditioner,
    mg_vcycle_fused,
)
from repro.multigrid.hierarchy import build_hierarchy
from repro.multigrid.smoothers import CSRSymgsSmoother
from repro.multigrid.vcycle import MGPreconditioner, mg_vcycle
from repro.solvers.pcg import pcg


@pytest.fixture(scope="module")
def hierarchy():
    from repro.grids.problems import poisson_problem

    p = poisson_problem((16, 16), "9pt")
    top = build_hierarchy(
        p.grid, p.stencil,
        lambda g, s, m: CSRSymgsSmoother(m),
        n_levels=3, matrix=p.matrix)
    return p, top


def test_fused_cycle_matches_reference(hierarchy, rng):
    p, top = hierarchy
    b = rng.standard_normal(p.n)
    x_ref = mg_vcycle(top, b)
    x_fused = mg_vcycle_fused(top, b)
    assert np.allclose(x_ref, x_fused)


def test_fused_preconditioned_cg(hierarchy):
    p, top = hierarchy
    x, hist = pcg(p.matrix, p.rhs, FusedMGPreconditioner(top),
                  tol=1e-10, maxiter=100)
    assert hist.converged
    assert np.allclose(x, p.exact, atol=1e-7)


def test_fused_and_reference_same_iterations(hierarchy):
    p, top = hierarchy
    _, h1 = pcg(p.matrix, p.rhs, MGPreconditioner(top), tol=1e-10,
                maxiter=100)
    _, h2 = pcg(p.matrix, p.rhs, FusedMGPreconditioner(top),
                tol=1e-10, maxiter=100)
    assert h1.iterations == h2.iterations
