"""Unit tests for hierarchy construction."""

import numpy as np
import pytest

from repro.grids.grid import StructuredGrid
from repro.grids.stencils import box27_3d, star5_2d
from repro.multigrid.hierarchy import build_hierarchy, hierarchy_levels
from repro.multigrid.smoothers import CSRSymgsSmoother


def csr_factory(grid, stencil, matrix):
    return CSRSymgsSmoother(matrix)


def test_level_count_and_sizes():
    g = StructuredGrid((16, 16))
    top = build_hierarchy(g, star5_2d(), csr_factory, n_levels=3)
    levels = hierarchy_levels(top)
    assert len(levels) == 3
    assert [l.grid.dims for l in levels] == [(16, 16), (8, 8), (4, 4)]
    assert top.depth() == 3


def test_coarse_operators_rediscretized():
    g = StructuredGrid((8, 8))
    top = build_hierarchy(g, star5_2d(), csr_factory, n_levels=2)
    from repro.grids.assembly import assemble_csr

    expect = assemble_csr(top.coarse.grid, star5_2d())
    assert np.array_equal(top.coarse.matrix.to_dense(),
                          expect.to_dense())


def test_f2c_set_on_non_coarsest():
    g = StructuredGrid((8, 8, 8))
    top = build_hierarchy(g, box27_3d(), csr_factory, n_levels=2)
    assert top.f2c is not None
    assert top.coarse.f2c is None
    assert top.coarse.coarse is None


def test_insufficient_divisibility_rejected():
    g = StructuredGrid((12, 12))
    with pytest.raises(ValueError):
        build_hierarchy(g, star5_2d(), csr_factory, n_levels=4)


def test_prebuilt_matrix_reused(problem_2d):
    top = build_hierarchy(problem_2d.grid, problem_2d.stencil,
                          csr_factory, n_levels=2,
                          matrix=problem_2d.matrix)
    assert top.matrix is problem_2d.matrix
