"""Unit tests for the pluggable smoothers."""

import numpy as np
import pytest

from repro.multigrid.smoothers import (
    CSRSymgsSmoother,
    DBSRSymgsSmoother,
    SELLSymgsSmoother,
    make_smoother,
)


@pytest.fixture(scope="module")
def setup():
    from repro.grids.problems import poisson_problem

    p = poisson_problem((8, 8), "9pt")
    return p


def test_all_kinds_smooth_identically_in_exact_arithmetic(setup, rng):
    """BMC/SELL/DBSR smoothers apply the same sweeps in different
    orders; all must reduce the residual and agree pairwise where the
    ordering matches."""
    p = setup
    b = p.rhs
    results = {}
    for kind in ("csr", "bmc", "sell", "dbsr"):
        sm = make_smoother(kind, p.grid, p.stencil, p.matrix, bsize=4,
                           n_workers=2)
        x = np.zeros(p.n)
        sm(x, b)
        r = np.linalg.norm(b - p.matrix.matvec(x))
        results[kind] = (x, r)
        r0 = np.linalg.norm(b)
        assert r < r0, kind


def test_dbsr_and_sell_smoothers_identical(setup, rng):
    """SELL and DBSR store the same vBMC-permuted matrix, so their
    sweeps agree exactly when chunk == bsize."""
    p = setup
    dbsr_sm = make_smoother("dbsr", p.grid, p.stencil, p.matrix,
                            bsize=4, n_workers=2)
    sell_sm = make_smoother("sell", p.grid, p.stencil, p.matrix,
                            bsize=4, n_workers=2)
    b = rng.standard_normal(p.n)
    x1 = np.zeros(p.n)
    x2 = np.zeros(p.n)
    dbsr_sm(x1, b)
    sell_sm(x2, b)
    assert np.allclose(x1, x2)


def test_dbsr_smoother_metadata(setup):
    p = setup
    sm = DBSRSymgsSmoother(p.grid, p.stencil, p.matrix, bsize=4,
                           block_dims=(4, 4))
    assert sm.barriers() == 2 * sm.n_colors
    assert sm.parallelism >= 1
    counts = sm.op_counts()
    assert counts.vfma > 0
    assert counts.bytes_gathered == 0


def test_sell_smoother_counts_gather(setup):
    p = setup
    sm = SELLSymgsSmoother(p.grid, p.stencil, p.matrix, chunk=4,
                           n_workers=2)
    assert sm.op_counts().bytes_gathered > 0


def test_csr_smoother_no_barriers(setup):
    sm = CSRSymgsSmoother(setup.matrix)
    assert sm.barriers() == 0
    assert sm.parallelism == 1.0


def test_unknown_kind_rejected(setup):
    p = setup
    with pytest.raises(ValueError):
        make_smoother("magic", p.grid, p.stencil, p.matrix)


def test_smoother_idempotent_at_solution(setup):
    p = setup
    for kind in ("csr", "dbsr"):
        sm = make_smoother(kind, p.grid, p.stencil, p.matrix, bsize=4,
                           n_workers=2)
        x = p.exact.copy()
        sm(x, p.rhs)
        assert np.allclose(x, p.exact), kind
