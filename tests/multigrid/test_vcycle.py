"""Unit tests for the V-cycle."""

import numpy as np
import pytest

from repro.multigrid.hierarchy import build_hierarchy
from repro.multigrid.smoothers import make_smoother
from repro.multigrid.vcycle import MGPreconditioner, mg_vcycle


@pytest.fixture(scope="module")
def hierarchy():
    from repro.grids.problems import poisson_problem

    p = poisson_problem((16, 16), "5pt")
    top = build_hierarchy(
        p.grid, p.stencil,
        lambda g, s, m: make_smoother("csr", g, s, m),
        n_levels=3, matrix=p.matrix)
    return p, top


def test_vcycle_reduces_residual(hierarchy):
    p, top = hierarchy
    x = mg_vcycle(top, p.rhs)
    assert np.linalg.norm(p.rhs - p.matrix.matvec(x)) \
        < 0.2 * np.linalg.norm(p.rhs)


def test_vcycle_iterates_to_solution(hierarchy):
    """Stationary MG iteration converges (injection transfers make it
    slow on 5-pt 2-D, but monotone and convergent)."""
    p, top = hierarchy
    x = np.zeros(p.n)
    norms = []
    for _ in range(40):
        r = p.rhs - p.matrix.matvec(x)
        norms.append(np.linalg.norm(r))
        x += mg_vcycle(top, r)
    assert norms[-1] < 1e-2 * norms[0]
    assert all(b <= a * 1.0001 for a, b in zip(norms, norms[1:]))


def test_mg_preconditioned_cg_iterations_mesh_stable():
    """MG-PCG iteration counts grow only mildly with grid size — the
    property HPCG's preconditioner relies on (vs sqrt(n) growth of
    plain CG)."""
    from repro.grids.problems import poisson_problem
    from repro.solvers.cg import cg
    from repro.solvers.pcg import pcg

    mg_iters, cg_iters = [], []
    for n in (8, 16, 32):
        p = poisson_problem((n, n), "5pt")
        top = build_hierarchy(
            p.grid, p.stencil,
            lambda g, s, m: make_smoother("csr", g, s, m),
            n_levels=2, matrix=p.matrix)
        _, hist = pcg(p.matrix, p.rhs, MGPreconditioner(top),
                      tol=1e-8, maxiter=200)
        mg_iters.append(hist.iterations)
        _, hist0 = cg(p.matrix, p.rhs, tol=1e-8, maxiter=500)
        cg_iters.append(hist0.iterations)
    assert mg_iters[-1] < cg_iters[-1]
    # Plain CG roughly doubles per refinement; MG-PCG grows much less.
    assert mg_iters[-1] / mg_iters[0] < cg_iters[-1] / cg_iters[0]


def test_preconditioner_callable(hierarchy, rng):
    p, top = hierarchy
    M = MGPreconditioner(top)
    r = rng.standard_normal(p.n)
    z = M(r)
    assert z.shape == r.shape
    assert np.isfinite(z).all()


def test_single_level_cycle_is_smoother(hierarchy, rng):
    from repro.multigrid.hierarchy import MGLevel
    from repro.multigrid.smoothers import CSRSymgsSmoother

    p, _ = hierarchy
    lone = MGLevel(grid=p.grid, matrix=p.matrix,
                   smoother=CSRSymgsSmoother(p.matrix))
    b = rng.standard_normal(p.n)
    x = mg_vcycle(lone, b)
    x_ref = np.zeros(p.n)
    CSRSymgsSmoother(p.matrix)(x_ref, b)
    assert np.allclose(x, x_ref)
