"""Fig. 7 — weak scaling of DBSR-optimized HPCG on the Phytium 2000+
cluster model (8 ranks x 8 cores per node, local 192^3, 1..256 nodes).

Paper reference points: CPO reaches ~5400 GFLOPS at 256 nodes, DBSR
improves it by 13.3% to a peak of 6119.2 GFLOPS; parallel efficiency
stays above 90%.
"""

from conftest import HPCG_NX_MODEL, emit

from repro.experiments import fig7


def test_fig7_weak_scaling(benchmark, hpcg_models):
    result = benchmark(fig7.generate, hpcg_models, HPCG_NX_MODEL)
    emit("fig7_weak_scaling", fig7.render(result))

    dbsr = result.series["dbsr"]
    cpo = result.series["cpo"]
    assert all(p.efficiency > 0.90 for p in dbsr)
    gain = dbsr[-1].gflops / cpo[-1].gflops
    assert 1.05 < gain < 1.5  # paper: 1.133
    assert dbsr[-1].gflops > 1000.0  # thousands of GFLOPS at scale
