"""Ablation — SELL's sigma sorting window (Kreutzer et al.).

Sigma-sorting shrinks SELL padding on ragged rows but reorders rows,
which is why the SYMGS sweeps of the HPCG variants must run sigma=1.
This ablation quantifies the padding/σ trade on the HPCG operator so
the cost of that constraint is on record.
"""

from conftest import emit

from repro.formats.sell import SELLMatrix
from repro.grids.problems import poisson_problem
from repro.utils.tables import format_table

SIGMAS = (1, 8, 32, "n")


def test_ablation_sell_sigma(benchmark):
    problem = poisson_problem((16, 16, 16), "27pt")
    csr = problem.matrix

    def run():
        rows = []
        for sigma in SIGMAS:
            s = csr.n_rows if sigma == "n" else sigma
            sell = SELLMatrix(csr, chunk=8, sigma=s)
            rep = sell.memory_report()
            rows.append((str(sigma), rep.padding_values,
                         f"{sell.padding_fraction() * 100:.2f}%",
                         rep.total_bytes))
        return rows

    rows = benchmark(run)
    emit("ablation_sell_sigma", format_table(
        ["sigma", "padded slots", "padding %", "total bytes"],
        rows, title="Ablation: SELL-8-sigma padding on the 16^3 "
        "27-point operator (sigma=1 required for GS sweeps)"))
    pads = [r[1] for r in rows]
    assert pads == sorted(pads, reverse=True)  # sorting monotone helps
    # Structured grids are nearly regular: even sigma=1 padding is
    # small (the reason SELL was viable for HPCG in the first place).
    assert float(rows[0][2][:-1]) < 20.0
