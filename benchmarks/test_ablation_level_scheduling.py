"""Ablation — level scheduling vs BMC reordering (§VI related work).

Level scheduling keeps the natural ordering (no convergence loss) but
needs one synchronization per dependency level — O(grid diameter) of
them — while BMC pays a small iteration penalty for a constant number
of color barriers. This ablation measures both sides on real data:
level counts from the actual dependency DAG, iteration counts from
real solves, and the modeled times under the Intel machine.
"""

from conftest import emit

from repro.formats.dbsr import DBSRMatrix
from repro.grids.problems import poisson_problem
from repro.kernels.counts import sptrsv_csr_counts, sptrsv_dbsr_counts
from repro.kernels.sptrsv_csr import split_triangular
from repro.kernels.sptrsv_level import build_levels
from repro.ordering.vbmc import build_vbmc
from repro.perfmodel.specs import KernelSpec
from repro.simd.machine import INTEL_XEON
from repro.utils.tables import format_table


def test_ablation_level_scheduling(benchmark):
    problem = poisson_problem((8, 8, 8), "27pt")
    scale = (256 / 8) ** 3

    def run():
        # Level scheduling on the natural ordering.
        L, D, U = split_triangular(problem.matrix)
        levels = build_levels(L)
        level_sizes = [len(l) for l in levels]
        spec_level = KernelSpec(
            counter=sptrsv_csr_counts(L),
            parallelism=float(min(level_sizes)),
            barriers=len(levels),
            vectorized=False,
        )
        # Vectorized BMC + DBSR.
        vb = build_vbmc(problem.grid, problem.stencil, (2, 2, 2), 4)
        Lp, Dp, Up = split_triangular(vb.apply_matrix(problem.matrix))
        dbsr = DBSRMatrix.from_csr(Lp, 4)
        spec_dbsr = KernelSpec(
            counter=sptrsv_dbsr_counts(dbsr, divide=True),
            parallelism=float(
                min(vb.schedule.color_group_ptr[c + 1]
                    - vb.schedule.color_group_ptr[c]
                    for c in range(vb.n_colors))),
            barriers=vb.n_colors,
            vectorized=True,
        )
        rows = []
        for t in (1, 16, 56):
            t_level = spec_level.scaled(scale).seconds(INTEL_XEON, t)
            t_dbsr = spec_dbsr.scaled(scale).seconds(INTEL_XEON, t)
            rows.append((t, f"{t_level * 1e3:.2f}",
                         f"{t_dbsr * 1e3:.2f}",
                         f"{t_level / t_dbsr:.2f}x"))
        return len(levels), vb.n_colors, rows

    n_levels, n_colors, rows = benchmark(run)
    emit("ablation_level_scheduling", format_table(
        ["threads", "level-sched ms", "DBSR ms", "DBSR advantage"],
        rows, title=f"Ablation: level scheduling ({n_levels} levels / "
        f"{n_levels} barriers) vs vBMC+DBSR ({n_colors} colors), "
        "one lower solve, scaled to 256^3"))
    # The grid diameter dwarfs the color count.
    assert n_levels > 3 * n_colors
    # DBSR wins at scale for every thread count.
    assert all(float(r[3][:-1]) > 1.0 for r in rows)
