"""Ablation — automatic bsize selection across machines and levels.

The paper (§V-F): bsize should match the platform's SIMD width and
shrink with the grid on coarse multigrid levels. This ablation prints
what the tuner picks across the Table I machines and an MG hierarchy.
"""

from conftest import emit

from repro.grids.grid import StructuredGrid
from repro.grids.stencils import box27_3d
from repro.simd.autotune import autotune_bsize
from repro.simd.machine import TABLE1_MACHINES
from repro.utils.tables import format_table

LEVELS = ((32, 32, 32), (16, 16, 16), (8, 8, 8), (4, 4, 4))


def test_ablation_autotune(benchmark):
    stencil = box27_3d()

    def run():
        rows = []
        for machine in TABLE1_MACHINES:
            for dtype_bytes, tag in ((8, "f64"), (4, "f32")):
                picks = [autotune_bsize(StructuredGrid(dims), stencil,
                                        machine, n_workers=4,
                                        dtype_bytes=dtype_bytes)
                         for dims in LEVELS]
                rows.append([f"{machine.name} ({tag})"]
                            + [str(p) for p in picks])
        return rows

    rows = benchmark(run)
    emit("ablation_autotune", format_table(
        ["machine"] + [f"{d[0]}^3" for d in LEVELS],
        rows, title="Ablation: autotuned bsize per machine/MG level "
        "(4 workers; paper: scale bsize to SIMD width and level "
        "size)"))
    for row in rows:
        picks = [int(p) for p in row[1:]]
        # bsize never grows on coarser levels.
        assert all(b >= a for a, b in zip(picks[1:], picks[:-1]))
    # Wider SIMD earns wider (or equal) vectors on the fine level.
    intel_f64 = next(r for r in rows if "Intel" in r[0]
                     and "f64" in r[0])
    kp_f64 = next(r for r in rows if "KunPeng" in r[0]
                  and "f64" in r[0])
    assert int(intel_f64[1]) >= int(kp_f64[1])
