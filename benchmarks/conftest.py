"""Shared fixtures and reporting helpers for the figure benchmarks.

Every benchmark regenerates one table/figure of the paper: it prints
the same rows/series the paper reports and writes them under
``benchmarks/results/`` so the numbers survive pytest's capture.
"""

from __future__ import annotations

import os

import pytest

from repro.grids.problems import poisson_problem

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_collection_modifyitems(config, items):
    """Mark everything under benchmarks/ as ``bench`` so explicit runs
    can still deselect it (tier-1 testpaths never collect it)."""
    for item in items:
        item.add_marker(pytest.mark.bench)


def emit(name: str, text: str) -> None:
    """Print a figure table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[written to {path}]")


@pytest.fixture(scope="session")
def ilu_problem():
    """Model problem for the ILU experiments (paper: 256^3; counts are
    measured here and linearly extrapolated)."""
    return poisson_problem((8, 8, 8), "27pt")


@pytest.fixture(scope="session")
def ilu_problem_7pt():
    return poisson_problem((8, 8, 8), "7pt")


@pytest.fixture(scope="session")
def ilu_problem_16():
    """Larger model problem for the bsize sweep (supports groups up
    to bsize 16)."""
    return poisson_problem((16, 16, 16), "27pt")


@pytest.fixture(scope="session")
def hpcg_models():
    """HPCG per-variant kernel-count models at nx=16, 3 levels."""
    from repro.hpcg.benchmark import build_hpcg_model

    return {
        v: build_hpcg_model(nx=16, variant=v, n_levels=3, bsize=8,
                            n_workers=8)
        for v in ("reference", "mkl", "arm", "cpo", "sell", "dbsr",
                  "sell-novec", "dbsr-novec", "dbsr-gather")
    }


#: Linear extrapolation factor from the bench problem to the paper's
#: 256^3 ILU dataset.
ILU_SCALE = (256 / 8) ** 3
ILU_SCALE_16 = (256 / 16) ** 3

#: From the nx=16 HPCG model problem to the paper's 192^3 local domain.
HPCG_NX_MODEL = 16
