"""Fig. 11 — storage overhead of DBSR vs CSR across bsize, split into
index bytes, original non-zero value bytes, and zero padding.

Paper reference points: total DBSR storage keeps shrinking with bsize
(index savings outweigh padding); single precision benefits more
because indices are a larger share.
"""

from conftest import emit

from repro.experiments import fig11


def test_fig11_storage(benchmark):
    panels = benchmark.pedantic(fig11.generate, rounds=1, iterations=1,
                                kwargs=dict(nx=16))
    emit("fig11_storage", fig11.render(panels))

    res = {prec: panel.series[prec]
           for panel, prec in zip(panels, ("f64", "f32"))}
    for prec in ("f64", "f32"):
        rows = res[prec]
        idx = [r[2] for r in rows]
        pad = [r[4] for r in rows]
        total = [r[5] for r in rows]
        assert idx == sorted(idx, reverse=True)   # indices shrink
        assert pad[-1] >= pad[0]                  # padding grows
        assert total[-1] < total[0]               # net win grows
        assert total[-1] < rows[-1][1]            # beats CSR
    # Single precision gains relatively more (indices are a larger
    # share of the CSR footprint).
    rel64 = res["f64"][-1][5] / res["f64"][-1][1]
    rel32 = res["f32"][-1][5] / res["f32"][-1][1]
    assert rel32 < rel64
