"""Fig. 5 — HPCG GFLOPS under different P x T allocation schemes on a
fully utilized node, for every optimization variant on the three
single-node platforms.

Paper reference points: DBSR improves CPO by 18.8-23.9 %; 1.47-1.70x
over HPCG_for_MKL and 2.41-3.40x over HPCG_for_ARM.
"""

from conftest import HPCG_NX_MODEL, emit

from repro.experiments import fig5
from repro.hpcg.benchmark import best_allocation


def test_fig5_hpcg_allocation(benchmark, hpcg_models):
    panels = benchmark(fig5.generate, hpcg_models, HPCG_NX_MODEL)
    emit("fig5_hpcg_allocation", fig5.render(panels))

    # Shape assertions: DBSR wins on every platform, within bands.
    for machine in fig5.MACHINES:
        _, _, g_dbsr = best_allocation(machine, hpcg_models["dbsr"])
        for v in ("reference", "mkl", "arm", "cpo", "sell"):
            _, _, g_other = best_allocation(machine, hpcg_models[v])
            assert g_dbsr > g_other, (machine.name, v)
        _, _, g_cpo = best_allocation(machine, hpcg_models["cpo"])
        _, _, g_mkl = best_allocation(machine, hpcg_models["mkl"])
        _, _, g_arm = best_allocation(machine, hpcg_models["arm"])
        assert 1.1 < g_dbsr / g_cpo < 1.5
        assert 1.3 < g_dbsr / g_mkl < 1.9
        assert 2.0 < g_dbsr / g_arm < 3.6
