"""Fig. 9 — ILU(0) smoothing-phase speedups over the serial solve for
every parallel strategy, 27-/7-point stencils, double/single precision.

Paper reference points (maxima across platforms): BJ 6.90-12.86x (f64)
/ 8.89-18.13x (f32); BMC-AUTO 9.46-20.21x / 10.77-24.54x; DBSR beats
BMC by 11-17% (f64) and 16-40% (f32); SIMD-DBSR best overall with up
to 11.53x/21.47x/17.82x on the three platforms.

Measured structure/convergence at 8^3 (bsize 4 / 8-point FIX blocks,
the small-grid analogue of the paper's bsize 8 / 64-point blocks),
counts linearly extrapolated to the paper's 256^3 (see DESIGN.md).
"""

import pytest
from conftest import emit

from repro.experiments import fig9


@pytest.mark.parametrize("machine,stencil,precision", [
    ("intel", "27pt", "f64"),
    ("intel", "27pt", "f32"),
    ("intel", "7pt", "f64"),
    ("kp920", "27pt", "f64"),
])
def test_fig9_ilu_smoothing(benchmark, machine, stencil, precision):
    result = benchmark.pedantic(
        fig9.generate, rounds=1, iterations=1,
        kwargs=dict(nx=8, machine_name=machine, stencil=stencil,
                    precision=precision))
    emit(result.name, fig9.render(result))

    res = result.series
    best = {name: max(res[name]) for name in fig9.STRATEGIES}
    assert best["mc"] < best["bmc-auto"]          # MC performs poorly
    # DBSR+SIMD tracks BMC at saturated bandwidth; the 8^3 model grid
    # inflates DBSR's padding relative to the paper's 256^3, so allow
    # a modest margin at the memory-bound end.
    assert best["simd-auto"] >= 0.8 * best["bmc-auto"]
    # ... and clearly wins in the compute-bound low-thread regime.
    assert res["simd-fix"][0] > res["bmc-fix"][0]
    assert res["simd-fix"][1] > res["bmc-fix"][1]
    assert best["bj"] > 3.0                       # BJ scales well
    # DBSR-family tracks the BMC-family (paper: +11-40% at 256^3; the
    # small model grid's extra padding costs DBSR a little here).
    assert max(best["dbsr-fix"], best["dbsr-auto"], best["simd-fix"],
               best["simd-auto"]) >= 0.85 * best["bmc-auto"]
