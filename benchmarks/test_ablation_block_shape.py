"""Ablation — block shape (the BMC knob of §II-B).

Cubic blocks minimize severed couplings (better convergence) and keep
every parity color populated; elongated blocks trade convergence and
scheduling quality for streaming locality. This ablation measures the
real iteration counts and the DBSR tile fragmentation per shape.
"""

from conftest import emit

from repro.formats.dbsr import DBSRMatrix
from repro.grids.problems import poisson_problem
from repro.ilu.ilu0_dbsr import ilu0_apply_dbsr, ilu0_factorize_dbsr
from repro.ordering.vbmc import build_vbmc
from repro.solvers.stationary import preconditioned_richardson
from repro.utils.tables import format_table

SHAPES = ((2, 2, 2), (4, 2, 1), (8, 1, 1), (4, 4, 4), (8, 2, 1))


def test_ablation_block_shape(benchmark):
    problem = poisson_problem((8, 8, 8), "27pt")

    def run():
        rows = []
        for shape in SHAPES:
            vb = build_vbmc(problem.grid, problem.stencil, shape, 4)
            dbsr = DBSRMatrix.from_csr(
                vb.apply_matrix(problem.matrix), 4)
            f = ilu0_factorize_dbsr(dbsr)
            _, hist = preconditioned_richardson(
                problem.matrix, problem.rhs,
                lambda r, vb=vb, f=f: vb.restrict(
                    ilu0_apply_dbsr(f, vb.extend(r))),
                tol=1e-8, maxiter=300)
            rows.append((str(shape), vb.n_colors,
                         vb.n_padded - vb.n_orig,
                         dbsr.n_tiles, hist.iterations))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_block_shape", format_table(
        ["block dims", "colors", "padded rows", "DBSR tiles",
         "iterations to 1e-8"],
        rows, title="Ablation: block shape (27-pt, 8^3, bsize 4)"))
    by_shape = {r[0]: r for r in rows}
    # Every shape converges.
    assert all(r[4] < 300 for r in rows)
    # Cubic blocks never need more colors than the parity bound.
    assert by_shape["(2, 2, 2)"][1] <= 8
