"""Ablation — deep kernel fusion (the CPO ingredient of §II-C).

Measures the traffic ratio of the fused SYMGS+residual against the
naive pair on the real HPCG operator, and verifies the fused V-cycle
is numerically identical — grounding the model's fusion factor.
"""

import numpy as np
from conftest import emit

from repro.grids.problems import poisson_problem
from repro.kernels.fused import (
    fused_symgs_residual_counts,
    fusion_traffic_ratio,
    naive_symgs_residual_counts,
)
from repro.utils.tables import format_table


def test_ablation_fusion(benchmark):
    def run():
        rows = []
        for nx, stencil in ((8, "27pt"), (16, "27pt"), (16, "7pt")):
            problem = poisson_problem((nx,) * 3, stencil)
            fused = fused_symgs_residual_counts(problem.matrix)
            naive = naive_symgs_residual_counts(problem.matrix)
            rows.append((f"{nx}^3 {stencil}",
                         naive.total_bytes // 1024,
                         fused.total_bytes // 1024,
                         f"{fusion_traffic_ratio(problem.matrix):.3f}"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_fusion", format_table(
        ["problem", "naive KiB", "fused KiB", "ratio"],
        rows, title="Ablation: SYMGS+residual fusion traffic "
        "(HPCG model applies 0.8 to vector streams)"))
    for _, naive_kib, fused_kib, ratio in rows:
        assert fused_kib < naive_kib
        assert 0.7 < float(ratio) < 0.95


def test_ablation_fusion_numerically_identical(benchmark):
    from repro.kernels.fused import (
        fused_symgs_residual,
        fused_symgs_residual_simple,
    )
    from repro.utils.rng import make_rng

    problem = benchmark.pedantic(
        poisson_problem, args=((8, 8, 8), "27pt"), rounds=1,
        iterations=1)
    A = problem.matrix
    rng = make_rng(5)
    b = rng.standard_normal(problem.n)
    x1 = np.zeros(problem.n)
    x2 = np.zeros(problem.n)
    r1 = fused_symgs_residual(A, A.diagonal(), x1, b)
    r2 = fused_symgs_residual_simple(A, A.diagonal(), x2, b)
    assert np.allclose(r1, r2)
    assert np.allclose(x1, x2)
