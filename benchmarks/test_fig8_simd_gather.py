"""Fig. 8 — DBSR vs SELL storage and the impact of SIMD/gather on the
Intel platform.

Paper reference points: SELL gains little over CSR-based CPO; DBSR
beats SELL by ~15.8% on average; SIMD adds ~12.4% for gather-free DBSR
but approximately nothing when the gather instruction is used (for
either format).
"""

from conftest import HPCG_NX_MODEL, emit

from repro.experiments import fig8


def test_fig8_simd_gather(benchmark, hpcg_models):
    result = benchmark(fig8.generate, hpcg_models, HPCG_NX_MODEL)
    emit("fig8_simd_gather", fig8.render(result))

    geo = {v: sum(s) / len(s) for v, s in result.series.items()}
    assert geo["dbsr"] > geo["sell"] * 1.05       # DBSR beats SELL
    assert geo["sell"] / geo["sell-novec"] < 1.15  # gather eats SIMD
    assert geo["dbsr"] / geo["dbsr-novec"] > 1.05  # gather-free gains
    assert geo["dbsr"] > geo["dbsr-gather"]
    # Low-thread (compute-bound) regime: the gather-free SIMD gain is
    # largest — the paper's 12.4% average figure.
    assert result.series["dbsr"][0] / result.series["dbsr-novec"][0] \
        > 1.2
