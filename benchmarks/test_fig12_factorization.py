"""Fig. 12 — ILU(0) factorization cost per strategy, expressed in
units of one DBSR smoothing sweep.

Paper reference points: MC/BMC factorizations mirror their smoothing
behaviour; DBSR spends about one smoothing-equivalent on
factorization; only BJ catches up at high parallelism (but smooths
poorly); SIMD further accelerates the DBSR factorization.
"""

from conftest import emit

from repro.experiments import fig12


def test_fig12_factorization(benchmark):
    result = benchmark.pedantic(fig12.generate, rounds=1, iterations=1,
                                kwargs=dict(nx=8))
    emit("fig12_factorization", fig12.render(result))

    res = result.series
    assert res["simd-auto"][-1] <= res["mc"][-1]
    assert res["simd-auto"][-1] <= res["bmc-fix"][-1]
    assert res["simd-auto"][-1] < 6.0
    # SIMD accelerates the DBSR factorization (§V-G last sentence).
    assert res["simd-auto"][-1] <= res["dbsr-auto"][-1] * 1.001
