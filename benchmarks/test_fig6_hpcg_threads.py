"""Fig. 6 — HPCG performance vs thread count (single process).

Paper reference points: DBSR improves CPO by 18.8-36.2 % (x86) and
15.2-52.2 % (ARM); DBSR vs MKL 1.03-1.70x; DBSR vs ARM 4.32-12.39x.
The reference and vendor-ARM versions stay flat because their SYMGS
does not thread inside a process.
"""

from conftest import HPCG_NX_MODEL, emit

from repro.experiments import fig6
from repro.simd.machine import INTEL_XEON


def test_fig6_hpcg_threads(benchmark, hpcg_models):
    panels = benchmark(fig6.generate, hpcg_models, HPCG_NX_MODEL)
    emit("fig6_hpcg_threads", fig6.render(panels))

    intel = next(p for p in panels if "Intel" in p.name)
    g = {v: intel.series[v] for v in fig6.VARIANTS}
    # DBSR > CPO > reference at full threads.
    assert g["dbsr"][-1] > g["cpo"][-1] > g["reference"][-1]
    assert g["dbsr"][-1] / g["arm"][-1] > 3.0  # paper: 4.32-12.39x
    # Reference stays flat (serial in-process SYMGS).
    assert g["reference"][-1] / g["reference"][0] < 2.0
    # DBSR actually scales.
    assert g["dbsr"][-1] / g["dbsr"][0] > 5.0
