"""Real wall-clock microbenchmarks of the sparse kernels.

These complement the figure models with actually measured times: the
numpy-vectorized DBSR kernels process a whole tile per operation, so
even under the Python interpreter the contiguous-tile structure is
observable (fewer, wider operations than per-element CSR).
"""

import numpy as np
import pytest

from repro.formats.dbsr import DBSRMatrix
from repro.formats.sell import SELLMatrix
from repro.grids.problems import poisson_problem
from repro.kernels.sptrsv_csr import split_triangular, sptrsv_csr
from repro.kernels.sptrsv_dbsr import sptrsv_dbsr_lower
from repro.ordering.vbmc import build_vbmc
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def workload():
    p = poisson_problem((16, 16, 16), "27pt")
    vb = build_vbmc(p.grid, p.stencil, (4, 4, 4), 8)
    csr = vb.apply_matrix(p.matrix)
    dbsr = DBSRMatrix.from_csr(csr, 8)
    L, D, U = split_triangular(csr)
    Ld = DBSRMatrix.from_csr(L, 8)
    x = make_rng(1).standard_normal(csr.n_cols)
    return p, csr, dbsr, L, D, Ld, x


def test_spmv_csr_wallclock(benchmark, workload):
    _, csr, _, _, _, _, x = workload
    y = benchmark(csr.matvec, x)
    assert np.isfinite(y).all()


def test_spmv_dbsr_wallclock(benchmark, workload):
    _, csr, dbsr, _, _, _, x = workload
    y = benchmark(dbsr.matvec, x)
    assert np.allclose(y, csr.matvec(x))


def test_spmv_sell_wallclock(benchmark, workload):
    _, csr, _, _, _, _, x = workload
    sell = SELLMatrix(csr, chunk=8, sigma=1)
    y = benchmark(sell.matvec, x)
    assert np.allclose(y, csr.matvec(x))


def test_sptrsv_csr_wallclock(benchmark, workload):
    _, _, _, L, D, _, x = workload
    b = x[: L.n_rows]
    sol = benchmark.pedantic(sptrsv_csr, args=(L, D, b), rounds=2,
                             iterations=1)
    assert np.isfinite(sol).all()


def test_sptrsv_dbsr_wallclock(benchmark, workload):
    _, _, _, L, D, Ld, x = workload
    b = x[: L.n_rows]
    sol = benchmark.pedantic(sptrsv_dbsr_lower, args=(Ld, b),
                             kwargs={"diag": D}, rounds=3,
                             iterations=1)
    assert np.allclose(sol, sptrsv_csr(L, D, b))


def test_dbsr_construction_wallclock(benchmark, workload):
    """Format conversion cost — the paper's step (2), paid once."""
    _, csr, _, _, _, _, _ = workload
    dbsr = benchmark(DBSRMatrix.from_csr, csr, 8)
    assert dbsr.n_tiles > 0


def test_block_ilu0_factorization_wallclock(benchmark, workload):
    from repro.ilu.ilu0_dbsr import ilu0_factorize_dbsr

    _, _, dbsr, _, _, _, _ = workload
    f = benchmark.pedantic(ilu0_factorize_dbsr, args=(dbsr,),
                           rounds=2, iterations=1)
    assert np.isfinite(f.matrix.values).all()


def test_symgs_csr_wallclock(benchmark, workload):
    from repro.kernels.symgs import symgs_csr

    _, csr, _, _, _, _, x = workload
    b = x[: csr.n_rows]
    xw = np.zeros(csr.n_rows)
    benchmark.pedantic(symgs_csr, args=(csr, csr.diagonal(), xw, b),
                       rounds=2, iterations=1)
    assert np.isfinite(xw).all()


def test_symgs_dbsr_wallclock(benchmark, workload):
    from repro.kernels.symgs import symgs_dbsr

    _, csr, dbsr, _, _, _, x = workload
    b = x[: csr.n_rows]
    diag = csr.diagonal()
    xw = np.zeros(csr.n_rows)
    benchmark.pedantic(symgs_dbsr, args=(dbsr, diag, xw, b),
                       rounds=3, iterations=1)
    # Each round is one more in-place sweep; equality with the CSR
    # sweeps is covered by the unit tests.
    assert np.isfinite(xw).all()


def test_symgs_sell_wallclock(benchmark, workload):
    from repro.kernels.symgs_sell import symgs_sell

    _, csr, dbsr, _, _, _, x = workload
    sell = SELLMatrix(csr, chunk=dbsr.bsize, sigma=1)
    b = x[: csr.n_rows]
    diag = csr.diagonal()
    xw = np.zeros(csr.n_rows)
    benchmark.pedantic(symgs_sell, args=(sell, diag, xw, b),
                       rounds=2, iterations=1)
    assert np.isfinite(xw).all()
