"""Fig. 10 — DBSR-ILU(0) smoothing time versus bsize on Intel.

Paper reference point: performance stabilizes once bsize reaches ~16;
tiny bsize wastes SIMD width, huge bsize costs padding/parallelism.
"""

from conftest import emit

from repro.experiments import fig10


def test_fig10_bsize_sweep(benchmark):
    result = benchmark.pedantic(fig10.generate, rounds=1, iterations=1,
                                kwargs=dict(nx=16, threads=16))
    emit("fig10_bsize_sweep", fig10.render(result))

    res = result.series["seconds"]
    # Shape: vectorized blocks beat scalar bsize=1, and the curve
    # flattens (no catastrophic growth at the largest size).
    assert res[8] < res[1]
    assert res[16] < 1.6 * min(res.values())
