"""Ablation — offset storage width (§III-B's packing remark).

The paper notes ``blk_offset`` needs only ``log2(bsize)`` bits plus a
sign, "without the need for the int type". This ablation quantifies
what int8 packing buys over plain int32 across bsize.
"""

from conftest import emit

from repro.formats.dbsr import DBSRMatrix
from repro.grids.problems import poisson_problem
from repro.ordering.vbmc import build_vbmc
from repro.utils.tables import format_table


def test_ablation_offset_packing(benchmark):
    problem = poisson_problem((16, 16, 16), "27pt")

    def run():
        rows = []
        for bsize in (2, 4, 8, 16):
            vb = build_vbmc(problem.grid, problem.stencil,
                            (4, 4, 4) if bsize <= 8 else (2, 2, 2),
                            bsize)
            dbsr = DBSRMatrix.from_csr(vb.apply_matrix(problem.matrix),
                                       bsize)
            int32 = dbsr.memory_report(offset_itemsize=4)
            int8 = dbsr.memory_report(offset_itemsize=1)
            saved = int32.total_bytes - int8.total_bytes
            rows.append((bsize, dbsr.n_tiles, int32.total_bytes,
                         int8.total_bytes, saved,
                         f"{saved / int32.total_bytes * 100:.1f}%"))
        return rows

    rows = benchmark(run)
    emit("ablation_offsets", format_table(
        ["bsize", "tiles", "int32 offsets B", "int8 offsets B",
         "saved B", "saved %"],
        rows, title="Ablation: blk_offset packing (int32 vs int8)"))
    # Packing always helps, proportionally to the tile count.
    for bsize, tiles, b32, b8, saved, _ in rows:
        assert saved == 3 * tiles
        assert b8 < b32
