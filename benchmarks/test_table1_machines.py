"""Table I — hardware platforms used in evaluation.

Prints the machine-model encoding of the paper's Table I and
benchmarks the model's kernel-time evaluation (the hot path every
figure model calls thousands of times).
"""

from conftest import emit

from repro.experiments import table1
from repro.simd.counters import OpCounter
from repro.simd.machine import TABLE1_MACHINES


def test_table1_machines(benchmark):
    emit("table1", table1.generate().render())

    counter = OpCounter(bsize=8, vload=10**6, vfma=10**6,
                        bytes_vector=8 * 10**6)

    def evaluate():
        total = 0.0
        for m in TABLE1_MACHINES:
            for t in (1, 8, m.cores):
                total += m.kernel_seconds(counter, threads=t)
        return total

    assert benchmark(evaluate) > 0
